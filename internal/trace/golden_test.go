package trace

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named testdata file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestWaterfallGolden pins the full waterfall + summary rendering of one
// fixed-seed load per scheduler family, so any change to row glyphs, axis
// layout, or summary arithmetic shows up as a diff.
func TestWaterfallGolden(t *testing.T) {
	site := webpage.NewSite("goldensite", webpage.Top100, 7)
	for _, pol := range []runner.Policy{runner.Vroom, runner.H2} {
		res, err := runner.Run(site, pol, runner.Options{
			Time:    time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC),
			Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 1},
			Nonce:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := Waterfall(res, Options{Width: 60, MaxRows: 15}) + "\n" + Summary(res)
		checkGolden(t, "waterfall_"+string(pol)+".golden", got)
	}
}

// TestWaterfallUnfinishedGolden pins the zero-PLT rendering: a load that
// never finished must say so rather than divide by zero.
func TestWaterfallUnfinishedGolden(t *testing.T) {
	got := Waterfall(browser.Result{}, Options{}) + "\n" + Summary(browser.Result{})
	checkGolden(t, "waterfall_unfinished.golden", got)
}

// TestWaterfallPushedNoRequest covers the glyph fix: a pushed resource the
// client never requested must draw its in-flight bar from the PUSH_PROMISE
// time, not from discovery.
func TestWaterfallPushedNoRequest(t *testing.T) {
	res := browser.Result{
		PLT: 10 * time.Second,
		Resources: []browser.ResourceTiming{{
			URL:            "https://x.test/pushed.css",
			Required:       true,
			Pushed:         true,
			DiscoveredAt:   1 * time.Second,
			PushPromisedAt: 4 * time.Second,
			ArrivedAt:      8 * time.Second,
			ProcessedAt:    9 * time.Second,
		}},
	}
	out := Waterfall(res, Options{Width: 10})
	// Columns: 1s→col 1, 4s→col 4, 8s→col 8. Discovery..promise is a
	// scheduler-hold dot run; promise..arrival the in-flight dashes.
	var row string
	for _, ln := range strings.Split(out, "\n") {
		if strings.Contains(ln, "pushed.css") {
			row = ln
		}
	}
	if row == "" {
		t.Fatalf("no row for pushed.css:\n%s", out)
	}
	close := strings.LastIndexByte(row, '|')
	bar := row[close-10 : close]
	if bar[1] != '.' || bar[3] != '.' {
		t.Errorf("pushed row bar %q: want hold dots from discovery (col 1) to promise (col 3)", bar)
	}
	if bar[4] != '-' || bar[7] != '-' {
		t.Errorf("pushed row bar %q: want in-flight bar from promise (col 4), not from discovery", bar)
	}
}
