// Package trace renders page-load waterfalls and critical-path summaries
// from a finished simulated load — the WProf-style view (§8, [41]) used to
// inspect why a policy is fast or slow.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"vroom/internal/browser"
	"vroom/internal/hints"
)

// Options control waterfall rendering.
type Options struct {
	// Width is the number of character columns for the time axis
	// (default 80).
	Width int
	// MaxRows truncates the resource list (0 = all).
	MaxRows int
	// RequiredOnly hides speculative fetches the page never needed.
	RequiredOnly bool
}

// Waterfall renders a text waterfall of the load, one row per resource in
// discovery order:
//
//	·  discovered, waiting to be requested (scheduler hold)
//	─  request in flight
//	█  response body arriving / arrived
//	▒  waiting for / doing CPU processing
//	P  the resource was pushed
func Waterfall(res browser.Result, opts Options) string {
	width := opts.Width
	if width <= 0 {
		width = 80
	}
	rows := make([]browser.ResourceTiming, 0, len(res.Resources))
	for _, rt := range res.Resources {
		if opts.RequiredOnly && !rt.Required {
			continue
		}
		rows = append(rows, rt)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].DiscoveredAt < rows[j].DiscoveredAt })
	if opts.MaxRows > 0 && len(rows) > opts.MaxRows {
		rows = rows[:opts.MaxRows]
	}
	total := res.PLT
	if total <= 0 {
		return "trace: load not finished\n"
	}
	col := func(t time.Duration) int {
		c := int(float64(t) / float64(total) * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	var b strings.Builder
	fmt.Fprintf(&b, "waterfall: %d resources, PLT %.2fs, scheduler %s\n", len(rows), total.Seconds(), res.Scheduler)
	fmt.Fprintf(&b, "%-44s|%s|\n", "", timeAxis(total, width))
	for _, rt := range rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		fill := func(from, to time.Duration, ch byte) {
			a, z := col(from), col(to)
			for i := a; i <= z && i < width; i++ {
				line[i] = ch
			}
		}
		req := rt.RequestedAt
		if req == 0 && rt.PushPromisedAt > 0 {
			// Server-initiated delivery with no client request: the
			// in-flight bar starts at the PUSH_PROMISE, not at discovery.
			req = rt.PushPromisedAt
		}
		if req == 0 && rt.ArrivedAt > 0 {
			req = rt.DiscoveredAt
		}
		if req > rt.DiscoveredAt {
			fill(rt.DiscoveredAt, req, '.')
		}
		if rt.ArrivedAt > 0 {
			fill(req, rt.ArrivedAt, '-')
			line[col(rt.ArrivedAt)] = '#'
		}
		if rt.ProcessedAt > rt.ArrivedAt && rt.ArrivedAt > 0 {
			fill(rt.ArrivedAt, rt.ProcessedAt, '=')
		}
		mark := ' '
		if rt.Pushed {
			mark = 'P'
		}
		fmt.Fprintf(&b, "%c %-4s %-37s|%s|\n", mark, prioShort(rt.Priority), shorten(rt.URL, 37), line)
	}
	fmt.Fprintf(&b, "legend: '.' held by scheduler  '-' in flight  '#' arrived  '=' processing  'P' pushed\n")
	return b.String()
}

func timeAxis(total time.Duration, width int) string {
	axis := make([]byte, width)
	for i := range axis {
		axis[i] = '.'
	}
	// A tick every second.
	for s := 0; ; s++ {
		t := time.Duration(s) * time.Second
		if t > total {
			break
		}
		c := int(float64(t) / float64(total) * float64(width))
		if c >= width {
			break
		}
		axis[c] = '|'
	}
	return string(axis)
}

func prioShort(p hints.Priority) string {
	switch p {
	case hints.High:
		return "high"
	case hints.Semi:
		return "semi"
	default:
		return "low"
	}
}

func shorten(u string, n int) string {
	u = strings.TrimPrefix(u, "https://")
	if len(u) <= n {
		return u
	}
	head := n/2 - 1
	return u[:head] + "…" + u[len(u)-(n-head-1):]
}

// Summary reports the phase structure of a load: when discovery, fetching,
// and processing completed, and where time went.
func Summary(res browser.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "load summary (%s)\n", res.Scheduler)
	fmt.Fprintf(&b, "  PLT                   %8.2fs\n", res.PLT.Seconds())
	fmt.Fprintf(&b, "  above-the-fold        %8.2fs\n", res.AFT.Seconds())
	fmt.Fprintf(&b, "  speed index           %8.0f\n", res.SpeedIndex)
	fmt.Fprintf(&b, "  all discovered by     %8.2fs\n", res.DiscoverAll.Seconds())
	fmt.Fprintf(&b, "  all fetched by        %8.2fs\n", res.FetchAll.Seconds())
	fmt.Fprintf(&b, "  high-pri discovered   %8.2fs\n", res.DiscoverHigh.Seconds())
	fmt.Fprintf(&b, "  high-pri fetched      %8.2fs\n", res.FetchHigh.Seconds())
	fmt.Fprintf(&b, "  main thread busy      %8.2fs (idle %.0f%%)\n", res.CPUBusy.Seconds(), res.IdleFrac*100)
	fmt.Fprintf(&b, "  bytes                 %8.0f KB (%0.0f KB wasted)\n", float64(res.BytesFetched)/1024, float64(res.WastedBytes)/1024)
	fmt.Fprintf(&b, "  resources             %5d required / %d fetched\n", res.NumRequired, res.NumFetched)
	return b.String()
}
