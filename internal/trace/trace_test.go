package trace

import (
	"strings"
	"testing"
	"time"

	"vroom/internal/browser"
	"vroom/internal/runner"
	"vroom/internal/webpage"
)

func TestWaterfallAndSummary(t *testing.T) {
	site := webpage.NewSite("tracetest", webpage.Top100, 12)
	res, err := runner.Run(site, runner.Vroom, runner.Options{
		Time:    time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC),
		Profile: webpage.Profile{Device: webpage.PhoneSmall, UserID: 1},
		Nonce:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := Waterfall(res, Options{Width: 60, MaxRows: 20, RequiredOnly: true})
	if !strings.Contains(w, "waterfall:") || !strings.Contains(w, "legend:") {
		t.Fatalf("waterfall output:\n%s", w)
	}
	lines := strings.Split(strings.TrimSpace(w), "\n")
	if len(lines) < 10 {
		t.Fatalf("too few waterfall rows: %d", len(lines))
	}
	// Row lines must all share the same width between the pipes.
	var widths []int
	for _, ln := range lines[2 : len(lines)-1] {
		open := strings.IndexByte(ln, '|')
		close := strings.LastIndexByte(ln, '|')
		if open < 0 || close <= open {
			t.Fatalf("malformed row: %q", ln)
		}
		widths = append(widths, close-open)
	}
	for _, wd := range widths {
		if wd != widths[0] {
			t.Fatalf("ragged waterfall columns: %v", widths)
		}
	}

	s := Summary(res)
	for _, want := range []string{"PLT", "above-the-fold", "main thread busy", "resources"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestWaterfallUnfinished(t *testing.T) {
	out := Waterfall(browser.Result{}, Options{})
	if !strings.Contains(out, "not finished") {
		t.Fatalf("zero result rendering: %q", out)
	}
}
