// Package urlutil provides the URL handling used throughout the Vroom
// reproduction: normalization, reference resolution (including
// scheme-relative and root-relative references found in HTML), and origin /
// registrable-domain extraction for cookie scoping and push eligibility.
package urlutil

import (
	"fmt"
	"net/url"
	"strings"
)

// URL is a normalized absolute http(s) URL broken into the parts the system
// cares about. It is comparable and suitable as a map key via String().
type URL struct {
	Scheme string // "http" or "https"
	Host   string // lowercased host, no port if default
	Path   string // always begins with "/"
	Query  string // raw query, without "?"
}

// Parse parses and normalizes an absolute URL. It rejects non-http(s)
// schemes (data:, javascript:, about:) since those never hit the network.
func Parse(raw string) (URL, error) {
	u, err := url.Parse(strings.TrimSpace(raw))
	if err != nil {
		return URL{}, fmt.Errorf("urlutil: parse %q: %w", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return URL{}, fmt.Errorf("urlutil: non-http scheme %q in %q", u.Scheme, raw)
	}
	if u.Host == "" {
		return URL{}, fmt.Errorf("urlutil: missing host in %q", raw)
	}
	return normalize(u), nil
}

// MustParse is Parse for known-good constants; it panics on error.
func MustParse(raw string) URL {
	u, err := Parse(raw)
	if err != nil {
		panic(err)
	}
	return u
}

// Resolve resolves a reference found in content served at base. It handles
// absolute refs, scheme-relative refs (//cdn.example/x), root-relative paths
// and relative paths. Non-fetchable refs (data:, javascript:, fragments,
// empty strings) return ok=false.
func Resolve(base URL, ref string) (URL, bool) {
	ref = strings.TrimSpace(ref)
	if ref == "" || strings.HasPrefix(ref, "#") {
		return URL{}, false
	}
	lower := strings.ToLower(ref)
	for _, bad := range []string{"data:", "javascript:", "about:", "blob:", "mailto:"} {
		if strings.HasPrefix(lower, bad) {
			return URL{}, false
		}
	}
	bu := &url.URL{Scheme: base.Scheme, Host: base.Host, Path: base.Path, RawQuery: base.Query}
	ru, err := url.Parse(ref)
	if err != nil {
		return URL{}, false
	}
	abs := bu.ResolveReference(ru)
	if abs.Scheme != "http" && abs.Scheme != "https" {
		return URL{}, false
	}
	if abs.Host == "" {
		return URL{}, false
	}
	return normalize(abs), true
}

func normalize(u *url.URL) URL {
	host := strings.ToLower(u.Host)
	switch {
	case u.Scheme == "http" && strings.HasSuffix(host, ":80"):
		host = strings.TrimSuffix(host, ":80")
	case u.Scheme == "https" && strings.HasSuffix(host, ":443"):
		host = strings.TrimSuffix(host, ":443")
	}
	path := u.EscapedPath()
	if path == "" {
		path = "/"
	}
	return URL{Scheme: u.Scheme, Host: host, Path: path, Query: u.RawQuery}
}

// String reassembles the URL.
func (u URL) String() string {
	var b strings.Builder
	b.WriteString(u.Scheme)
	b.WriteString("://")
	b.WriteString(u.Host)
	b.WriteString(u.Path)
	if u.Query != "" {
		b.WriteByte('?')
		b.WriteString(u.Query)
	}
	return b.String()
}

// IsZero reports whether u is the zero URL.
func (u URL) IsZero() bool { return u.Scheme == "" && u.Host == "" }

// Origin returns scheme://host, the unit of connection reuse and of HTTP/2
// push authority.
func (u URL) Origin() string { return u.Scheme + "://" + u.Host }

// HostOnly returns the host without any port.
func (u URL) HostOnly() string {
	if i := strings.LastIndexByte(u.Host, ':'); i >= 0 && !strings.Contains(u.Host, "]") {
		return u.Host[:i]
	}
	return u.Host
}

// RegistrableDomain approximates eTLD+1 extraction: it returns the last two
// labels of the host ("static.cdn.example.com" -> "example.com"). For
// two-label public suffixes common in web corpora ("co.uk", "com.au", ...) it
// keeps three labels. IP literals and single-label hosts are returned as-is.
func RegistrableDomain(host string) string {
	host = strings.ToLower(host)
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host, "]") {
		host = host[:i]
	}
	if host == "" || strings.Trim(host, "0123456789.") == "" || strings.HasPrefix(host, "[") {
		return host // IP literal
	}
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	suffix := labels[len(labels)-2] + "." + labels[len(labels)-1]
	if twoLabelSuffixes[suffix] && len(labels) >= 3 {
		return labels[len(labels)-3] + "." + suffix
	}
	return suffix
}

// twoLabelSuffixes lists the two-label public suffixes the reproduction's
// corpora can produce. A full public-suffix list is out of scope.
var twoLabelSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true, "gov.uk": true,
	"com.au": true, "net.au": true, "org.au": true,
	"co.jp": true, "ne.jp": true, "or.jp": true,
	"com.br": true, "com.cn": true, "com.mx": true, "co.in": true,
	"co.kr": true, "co.nz": true, "co.za": true,
}

// SameSite reports whether two hosts share a registrable domain. Vroom uses
// this for the incremental-adoption scenario (all domains controlled by the
// first party are Vroom-compliant) and for first-party vs third-party
// classification.
func SameSite(a, b string) bool {
	return RegistrableDomain(a) == RegistrableDomain(b)
}

// SameOrigin reports whether two URLs share scheme and host. A server may
// only PUSH resources for its own origin.
func SameOrigin(a, b URL) bool { return a.Scheme == b.Scheme && a.Host == b.Host }
