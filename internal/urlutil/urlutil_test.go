package urlutil

import (
	"testing"
	"testing/quick"
)

func TestParseNormalizes(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"https://Example.COM/a/b", "https://example.com/a/b"},
		{"http://example.com:80/x", "http://example.com/x"},
		{"https://example.com:443/x", "https://example.com/x"},
		{"https://example.com", "https://example.com/"},
		{"https://example.com/a?b=1&c=2", "https://example.com/a?b=1&c=2"},
	}
	for _, c := range cases {
		u, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := u.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"javascript:void(0)", "data:image/png;base64,xyz", "about:blank",
		"ftp://example.com/x", "/relative/only", "",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) accepted", in)
		}
	}
}

func TestResolve(t *testing.T) {
	base := MustParse("https://www.example.com/news/index.html")
	cases := []struct {
		ref, want string
		ok        bool
	}{
		{"https://cdn.example.com/a.js", "https://cdn.example.com/a.js", true},
		{"//cdn.example.com/b.js", "https://cdn.example.com/b.js", true},
		{"/img/logo.png", "https://www.example.com/img/logo.png", true},
		{"photo.jpg", "https://www.example.com/news/photo.jpg", true},
		{"../css/style.css", "https://www.example.com/css/style.css", true},
		{"#section", "", false},
		{"javascript:go()", "", false},
		{"data:text/plain,hi", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		u, ok := Resolve(base, c.ref)
		if ok != c.ok {
			t.Errorf("Resolve(%q) ok=%v, want %v", c.ref, ok, c.ok)
			continue
		}
		if ok && u.String() != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.ref, u, c.want)
		}
	}
}

func TestResolveAbsoluteRoundTrip(t *testing.T) {
	base := MustParse("https://www.example.com/")
	f := func(path string) bool {
		u := URL{Scheme: "https", Host: "host.example.org", Path: "/p"}
		got, ok := Resolve(base, u.String())
		return ok && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegistrableDomain(t *testing.T) {
	cases := map[string]string{
		"www.example.com":        "example.com",
		"static.cdn.example.com": "example.com",
		"example.com":            "example.com",
		"bbc.co.uk":              "bbc.co.uk",
		"news.bbc.co.uk":         "bbc.co.uk",
		"localhost":              "localhost",
		"192.168.0.1":            "192.168.0.1",
		"example.com:8080":       "example.com",
	}
	for in, want := range cases {
		if got := RegistrableDomain(in); got != want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSameSite(t *testing.T) {
	if !SameSite("www.news.com", "static.news.com") {
		t.Error("www and static subdomains should be same site")
	}
	if SameSite("www.news.com", "www.ads.com") {
		t.Error("different registrable domains are not same site")
	}
}

func TestSameOrigin(t *testing.T) {
	a := MustParse("https://a.com/x")
	b := MustParse("https://a.com/y")
	c := MustParse("http://a.com/x")
	d := MustParse("https://b.com/x")
	if !SameOrigin(a, b) {
		t.Error("same scheme+host should be same origin")
	}
	if SameOrigin(a, c) || SameOrigin(a, d) {
		t.Error("scheme or host mismatch should differ")
	}
}

func TestOriginAndHostOnly(t *testing.T) {
	u := MustParse("https://www.example.com:8443/x")
	if u.Origin() != "https://www.example.com:8443" {
		t.Errorf("Origin = %q", u.Origin())
	}
	if u.HostOnly() != "www.example.com" {
		t.Errorf("HostOnly = %q", u.HostOnly())
	}
}

func TestStringParseRoundTripProperty(t *testing.T) {
	paths := []string{"/", "/a", "/a/b.js", "/img/x-y_z.png", "/q"}
	hosts := []string{"a.com", "www.b.org", "x.y.co.uk"}
	for _, h := range hosts {
		for _, p := range paths {
			u := URL{Scheme: "https", Host: h, Path: p}
			back, err := Parse(u.String())
			if err != nil {
				t.Fatalf("Parse(%q): %v", u.String(), err)
			}
			if back != u {
				t.Errorf("round trip %q -> %q", u, back)
			}
		}
	}
}
