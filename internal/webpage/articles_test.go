package webpage

import (
	"testing"
	"time"
)

func TestArticlePageSnapshots(t *testing.T) {
	s := NewSite("multi", News, 61)
	if s.NumPages() < 2 {
		t.Fatal("site has no article pages")
	}
	p := Profile{Device: PhoneSmall, UserID: 4}
	for idx := 0; idx < s.NumPages(); idx++ {
		sn := s.PageSnapshot(idx, t0, p, 1)
		if sn.Root != s.PageURL(idx) {
			t.Fatalf("page %d root %s != %s", idx, sn.Root, s.PageURL(idx))
		}
		// Crawl from each page's root covers exactly its snapshot.
		crawled := CrawlURLSet(sn)
		for u := range sn.URLSet() {
			if !crawled[u] {
				res, _ := sn.LookupString(u)
				t.Errorf("page %d: %s (%v) not crawlable", idx, u, res.Type)
			}
		}
		if t.Failed() {
			return
		}
	}
}

func TestArticleURLsStableAcrossHours(t *testing.T) {
	s := NewSite("multi", News, 62)
	for idx := 1; idx < s.NumPages(); idx++ {
		if s.PageURL(idx) != s.PageURL(idx) {
			t.Fatal("PageURL not deterministic")
		}
	}
	p := Profile{Device: PhoneSmall, UserID: 4}
	a := s.PageSnapshot(1, t0, p, 1)
	b := s.PageSnapshot(1, t0.Add(time.Hour), p, 1)
	if a.Root != b.Root {
		t.Fatal("article URL rotated with content")
	}
	// Content churns: the two materializations must differ.
	bSet := b.URLSet()
	diff := 0
	for u := range a.URLSet() {
		if !bSet[u] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("article content did not churn across an hour")
	}
}

func TestArticlesShareTemplateAssets(t *testing.T) {
	s := NewSite("multi", News, 63)
	if s.NumPages() < 3 {
		t.Skip("need 2 articles")
	}
	p := Profile{Device: PhoneSmall, UserID: 4}
	landing := s.Snapshot(t0, p, 1).URLSet()
	art := s.PageSnapshot(1, t0, p, 1)
	sharedCSS := 0
	for _, r := range art.Ordered() {
		if r.Type == CSS && landing[r.URL.String()] {
			sharedCSS++
		}
	}
	if sharedCSS == 0 {
		t.Error("article shares no stylesheets with the landing page")
	}
}
