package webpage

import (
	"fmt"
	"math/rand"
)

// Corpus is a set of generated sites used by the experiments.
type Corpus struct {
	Sites []*Site
}

// CorpusConfig selects the composition of a corpus.
type CorpusConfig struct {
	// Seed makes the whole corpus deterministic.
	Seed int64
	// NumTop100, NumNews, NumSports, NumShopping are the per-category
	// site counts.
	NumTop100, NumNews, NumSports, NumShopping int
}

// NewsAndSports returns the paper's main workload: the top 50 News and top
// 50 Sports landing pages.
func NewsAndSports(seed int64) CorpusConfig {
	return CorpusConfig{Seed: seed, NumNews: 50, NumSports: 50}
}

// Top100Mix returns the Alexa-US-top-100-like workload.
func Top100Mix(seed int64) CorpusConfig {
	return CorpusConfig{Seed: seed, NumTop100: 100}
}

// Generate builds a corpus.
func Generate(cfg CorpusConfig) *Corpus {
	r := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{}
	for i := 0; i < cfg.NumTop100; i++ {
		c.Sites = append(c.Sites, NewSite(fmt.Sprintf("popular%02d", i), Top100, r.Int63()))
	}
	for i := 0; i < cfg.NumNews; i++ {
		c.Sites = append(c.Sites, NewSite(fmt.Sprintf("dailynews%02d", i), News, r.Int63()))
	}
	for i := 0; i < cfg.NumSports; i++ {
		c.Sites = append(c.Sites, NewSite(fmt.Sprintf("sportly%02d", i), Sports, r.Int63()))
	}
	for i := 0; i < cfg.NumShopping; i++ {
		c.Sites = append(c.Sites, NewSite(fmt.Sprintf("shoply%02d", i), Shopping, r.Int63()))
	}
	return c
}
