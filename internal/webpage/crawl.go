package webpage

import (
	"vroom/internal/cssparse"
	"vroom/internal/htmlparse"
	"vroom/internal/jsparse"
	"vroom/internal/urlutil"
)

// Discovered is one parser-derived reference from a resource body.
type Discovered struct {
	URL urlutil.URL
	// FromIframe marks references found inside an embedded HTML document
	// or its descendants.
	FromIframe bool
	// Async marks references the browser fetches lazily (async/defer
	// scripts).
	Async bool
	// Inline marks references found in inline <script>/<style> bodies:
	// invisible to the preload scanner, surfaced only during parsing.
	Inline bool
	// Blocking marks scripts injected via document.write, which are
	// parser-blocking in the injecting document just like markup-declared
	// synchronous scripts.
	Blocking bool
	// Order preserves processing order within the parent.
	Order int
	// Offset is the byte position of the reference in the parent body,
	// used to model incremental parsing; 0 when unknown.
	Offset int
}

// TypeFromURL infers a resource type from the URL's path extension, the way
// a browser classifies a reference before the response arrives.
func TypeFromURL(u urlutil.URL) ResourceType {
	path := u.Path
	dot := -1
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '.' {
			dot = i
			break
		}
		if path[i] == '/' {
			break
		}
	}
	if dot < 0 {
		return HTML // bare paths serve documents
	}
	switch path[dot+1:] {
	case "html", "htm", "php", "asp":
		return HTML
	case "css":
		return CSS
	case "js":
		return JS
	case "jpg", "jpeg", "png", "gif", "webp", "svg":
		return Image
	case "woff", "woff2", "ttf", "otf":
		return Font
	case "mp4", "webm", "mp3":
		return Media
	case "json":
		return JSON
	default:
		return Other
	}
}

// ExtractRefs parses the body of res and returns the references a browser
// would act on, in processing order. It is the shared discovery logic used
// by the simulated browser, the server-side online analyzer, and the
// offline crawler.
func ExtractRefs(res *Resource) []Discovered {
	switch res.Type {
	case HTML:
		refs := htmlparse.Extract(res.Body, htmlparse.ExtractOptions{
			Base:       res.URL,
			CSSScanner: cssparse.ExtractURLs,
			JSScanner:  jsparse.ExtractURLs,
		})
		out := make([]Discovered, 0, len(refs))
		for i, r := range refs {
			inline := r.Kind == htmlparse.RefInlineCSS || r.Kind == htmlparse.RefInlineJS
			out = append(out, Discovered{URL: r.URL, Async: r.Async, Inline: inline, Order: i, Offset: r.Offset})
		}
		return out
	case CSS:
		refs := cssparse.Extract(res.Body)
		out := make([]Discovered, 0, len(refs))
		for i, r := range refs {
			u, ok := urlutil.Resolve(res.URL, r.Raw)
			if !ok {
				continue
			}
			out = append(out, Discovered{URL: u, Order: i})
		}
		return out
	case JS:
		an := jsparse.Analyze(res.Body)
		out := make([]Discovered, 0, len(an.Refs))
		for i, r := range an.Refs {
			u, ok := urlutil.Resolve(res.URL, r.Raw)
			if !ok {
				continue
			}
			blocking := r.Idiom == jsparse.IdiomDocumentWrite && TypeFromURL(u) == JS
			// Dynamically inserted scripts (createElement/appendChild)
			// are async by specification; only document.write injection
			// blocks the parser.
			async := TypeFromURL(u) == JS && !blocking
			out = append(out, Discovered{URL: u, Order: i, Blocking: blocking, Async: async})
		}
		return out
	default:
		return nil
	}
}

// Crawl performs a full headless load of a snapshot: starting from the root
// document it parses every fetched body and follows references until
// closure. It returns every discovered resource keyed by URL string. This is
// what a Vroom-compliant server's offline dependency resolution does
// (§4.1.2) and also serves as ground truth for "all resources a client load
// will fetch".
func Crawl(sn *Snapshot) map[string]Discovered {
	found := make(map[string]Discovered)
	var walk func(res *Resource, inIframe bool)
	walk = func(res *Resource, inIframe bool) {
		for _, d := range ExtractRefs(res) {
			key := d.URL.String()
			child, ok := sn.LookupString(key)
			childIsIframe := inIframe || (ok && child.Type == HTML && res.Type == HTML)
			// References reached through a JS/CSS chain rooted in an
			// iframe stay iframe-scoped.
			d.FromIframe = childIsIframe || inIframe
			if prev, seen := found[key]; seen {
				// Keep the least-restrictive scope if reachable both ways.
				if prev.FromIframe && !d.FromIframe {
					found[key] = d
				}
				continue
			}
			found[key] = d
			if ok && child.Type.NeedsProcessing() {
				walk(child, d.FromIframe)
			}
		}
	}
	root := sn.RootResource()
	if root != nil {
		walk(root, false)
	}
	return found
}

// CrawlURLSet returns just the URL-string set from Crawl, including the root.
func CrawlURLSet(sn *Snapshot) map[string]bool {
	found := Crawl(sn)
	set := make(map[string]bool, len(found)+1)
	set[sn.Root.String()] = true
	for k := range found {
		set[k] = true
	}
	return set
}
