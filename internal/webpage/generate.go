package webpage

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"vroom/internal/urlutil"
)

// Site is a generative model of one website. The skeleton (resource slots,
// sizes, dependency structure, churn classes) is fixed at construction; each
// call to Snapshot materializes the page as it would be served at a given
// time to a given client.
type Site struct {
	Name     string
	Category Category
	Seed     int64
	Params   Params

	root    *slot
	domains siteDomains
	nslots  int
	// articles are further pages of the site (individual stories) that
	// share the landing page's template — stylesheets, scripts, trackers —
	// but carry their own content. They back the §7 "similarity across
	// pages of the same type" extension.
	articles []*slot
}

type siteDomains struct {
	fp       string // www.<name>.com — serves the root HTML
	fpStatic string // static.<name>.com
	fpImg    string // img.<name>.com
	cdns     []string
	trackers []string
	ads      []string
	fonts    string
	social   string
}

// variantGroup describes how a device-variant resource maps device classes
// to URL variants.
type variantGroup int

const (
	variantNone   variantGroup = iota
	variantPhones              // PhoneSmall+PhoneLarge share, Tablet differs
	variantAll                 // all three classes differ
)

type slot struct {
	id       int
	typ      ResourceType
	size     int
	persist  PersistClass
	host     string
	dir      string
	base     string
	ext      string
	async    bool
	blocking bool // document.write-injected sync script
	inIframe bool
	viewport float64
	variant  variantGroup
	// personalized marks content whose children depend on the user cookie
	// (embedded third-party HTML).
	personalized bool
	// userState marks scripts whose fetches depend on user-specific state.
	userState bool
	children  []*slot
}

// NewSite builds a site skeleton deterministically from (name, cat, seed).
func NewSite(name string, cat Category, seed int64) *Site {
	s := &Site{Name: name, Category: cat, Seed: seed, Params: DefaultParams(cat)}
	r := rand.New(rand.NewSource(seed))
	s.domains = pickDomains(name, r)
	s.root = s.buildSkeleton(r)
	s.buildArticles(r)
	return s
}

// buildArticles derives story pages from the landing page's template:
// shared head assets (stylesheets, scripts — the same slots, so the same
// URLs) plus per-article content.
func (s *Site) buildArticles(r *rand.Rand) {
	p := s.Params
	n := 3 + r.Intn(4)
	// Shared template: everything in the landing page except its content
	// images and data feeds.
	var template []*slot
	for _, c := range s.root.children {
		switch c.typ {
		case CSS, JS, HTML, Other:
			template = append(template, c)
		}
	}
	for i := 0; i < n; i++ {
		art := s.newSlot(HTML, p.RootHTMLSize.sampleSize(r)*2/3, Hourly,
			s.domains.fp, "/article", fmt.Sprintf("story%d", i), "html")
		art.viewport = 0.15
		art.children = append(art.children, template...)
		// Article-specific content: a hero, inline photos, a data feed.
		nImg := 4 + r.Intn(8)
		for j := 0; j < nImg; j++ {
			img := s.newSlot(Image, p.ImageSize.sampleSize(r), Hourly,
				s.domains.fpImg, "/img", fmt.Sprintf("art%d_%d", i, j), "jpg")
			if j == 0 {
				img.size *= 2
				img.viewport = 0.25
			}
			art.children = append(art.children, img)
		}
		feed := s.newSlot(JSON, p.JSONSize.sampleSize(r), Hourly,
			s.domains.fp, "/api", fmt.Sprintf("artfeed%d", i), "json")
		art.children = append(art.children, feed)
		s.articles = append(s.articles, art)
	}
}

// NumPages returns the number of pages the site serves: the landing page
// plus its articles.
func (s *Site) NumPages() int { return 1 + len(s.articles) }

// PageURL returns the URL of page idx (0 = landing page). Article URLs are
// stable; their content churns hourly.
func (s *Site) PageURL(idx int) urlutil.URL {
	if idx <= 0 {
		return s.RootURL()
	}
	sl := s.articles[idx-1]
	return urlutil.URL{Scheme: "https", Host: sl.host,
		Path: fmt.Sprintf("%s/%s.html", sl.dir, sl.base)}
}

// PageSnapshot materializes one page of the site (0 = landing page, which
// is what Snapshot returns). Shared template resources get identical URLs
// across pages of the site.
func (s *Site) PageSnapshot(idx int, at time.Time, p Profile, nonce uint64) *Snapshot {
	if idx <= 0 {
		return s.Snapshot(at, p, nonce)
	}
	root := s.articles[idx-1]
	sn := &Snapshot{
		Site:      s,
		Time:      at,
		Profile:   p,
		Nonce:     nonce,
		Root:      s.PageURL(idx),
		resources: make(map[string]*Resource),
	}
	s.materializePage(sn, root, at, p, nonce)
	s.render(sn)
	return sn
}

// materializePage is materialize with a fixed root URL for article pages.
func (s *Site) materializePage(sn *Snapshot, rootSlot *slot, at time.Time, p Profile, nonce uint64) {
	res := &Resource{
		URL:            sn.Root,
		Type:           HTML,
		Size:           rootSlot.size,
		Persist:        rootSlot.persist,
		ViewportWeight: rootSlot.viewport,
	}
	sn.add(res)
	for _, c := range rootSlot.children {
		cr := s.materialize(sn, c, sn.Root.String(), at, p, nonce, false)
		res.Children = append(res.Children, cr.URL.String())
	}
}

// FirstPartyDomain returns the registrable domain of the site's root.
func (s *Site) FirstPartyDomain() string { return urlutil.RegistrableDomain(s.domains.fp) }

// RootURL returns the landing-page URL.
func (s *Site) RootURL() urlutil.URL {
	return urlutil.URL{Scheme: "https", Host: s.domains.fp, Path: "/"}
}

var cdnPool = []string{"cdn1.fastedge.net", "cdn2.fastedge.net", "assets.cloudrail.com", "static.swiftcdn.io"}
var trackerPool = []string{"t1.trackly.net", "metrics.statcore.com", "px.beaconly.io", "tags.tagchain.com", "a.audiencely.net"}
var adPool = []string{"serve.adnetic.com", "ads.displayxchg.com", "creative.bannerly.net"}

func pickDomains(name string, r *rand.Rand) siteDomains {
	d := siteDomains{
		fp:       "www." + name + ".com",
		fpStatic: "static." + name + ".com",
		fpImg:    "img." + name + ".com",
		fonts:    "fonts.webtypeface.com",
		social:   "widgets.sharely.com",
	}
	d.cdns = pickN(r, cdnPool, 1+r.Intn(2))
	d.trackers = pickN(r, trackerPool, 2+r.Intn(3))
	d.ads = pickN(r, adPool, 1+r.Intn(2))
	return d
}

func pickN(r *rand.Rand, pool []string, n int) []string {
	idx := r.Perm(len(pool))
	if n > len(pool) {
		n = len(pool)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[idx[i]]
	}
	return out
}

func (s *Site) newSlot(typ ResourceType, size int, persist PersistClass, host, dir, base, ext string) *slot {
	s.nslots++
	return &slot{id: s.nslots, typ: typ, size: size, persist: persist, host: host, dir: dir, base: base, ext: ext}
}

// contentPersist samples a churn class for content resources.
func (s *Site) contentPersist(r *rand.Rand) PersistClass {
	p := s.Params
	v := r.Float64()
	switch {
	case v < p.FracHourly:
		return Hourly
	case v < p.FracHourly+p.FracDaily:
		return Daily
	case v < p.FracHourly+p.FracDaily+p.FracWeekly:
		return Weekly
	default:
		return Permanent
	}
}

func (s *Site) buildSkeleton(r *rand.Rand) *slot {
	p := s.Params
	d := s.domains
	root := s.newSlot(HTML, p.RootHTMLSize.sampleSize(r), Hourly, d.fp, "", "index", "html")
	root.viewport = 0.15

	// Stylesheets: mostly first-party static, some CDN; stable.
	nCSS := p.NumCSS.sampleInt(r)
	for i := 0; i < nCSS; i++ {
		host := d.fpStatic
		if r.Float64() < 0.3 {
			host = d.cdns[r.Intn(len(d.cdns))]
		}
		persist := Permanent
		if r.Float64() < 0.15 {
			persist = Hourly // page-specific bundle
		}
		css := s.newSlot(CSS, p.CSSSize.sampleSize(r), persist, host, "/css", fmt.Sprintf("style%d", i), "css")
		css.viewport = 0.04
		// url() images.
		for j, n := 0, p.CSSImages.sampleInt(r); j < n; j++ {
			img := s.newSlot(Image, p.ImageSize.sampleSize(r), s.contentPersist(r), d.fpImg, "/img", fmt.Sprintf("bg%d_%d", i, j), "png")
			img.viewport = 0.005
			if r.Float64() < p.FracDeviceVariant {
				img.variant = variantKind(r)
			}
			css.children = append(css.children, img)
		}
		// Occasional @import chain.
		if r.Float64() < 0.2 {
			sub := s.newSlot(CSS, p.CSSSize.sampleSize(r)/2, Permanent, host, "/css", fmt.Sprintf("import%d", i), "css")
			css.children = append(css.children, sub)
		}
		root.children = append(root.children, css)
	}

	// Fonts, referenced from the first stylesheet (typical @font-face).
	if nCSS > 0 {
		for i, n := 0, p.NumFonts.sampleInt(r); i < n; i++ {
			font := s.newSlot(Font, p.FontSize.sampleSize(r), Permanent, d.fonts, "/font", fmt.Sprintf("face%d", i), "woff2")
			root.children[0].children = append(root.children[0].children, font)
		}
	}

	// Synchronous scripts in the head: frameworks and app code.
	nSync := p.NumSyncJS.sampleInt(r)
	for i := 0; i < nSync; i++ {
		host := d.fpStatic
		switch {
		case i == 0: // framework from a CDN
			host = d.cdns[0]
		case r.Float64() < 0.25:
			host = d.cdns[r.Intn(len(d.cdns))]
		}
		persist := Permanent
		if r.Float64() < 0.2 {
			persist = s.contentPersist(r)
		}
		js := s.newSlot(JS, p.JSSize.sampleSize(r), persist, host, "/js", fmt.Sprintf("app%d", i), "js")
		// Application code may consult user state (recommendations,
		// AB-test buckets); its fetches then vary per load.
		if r.Float64() < p.FracUserStateJS {
			js.userState = true
		}
		s.addJSChildren(r, js, false)
		// Some synchronous scripts document.write further synchronous
		// scripts (legacy tag patterns): parser-blocking chains.
		if r.Float64() < p.FracBlockingChains {
			chain := s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, host, "/js", fmt.Sprintf("plugin%d", i), "js")
			chain.blocking = true
			js.children = append(js.children, chain)
			if r.Float64() < 0.3 {
				deeper := s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, host, "/js", fmt.Sprintf("plugin%d_b", i), "js")
				deeper.blocking = true
				chain.children = append(chain.children, deeper)
			}
		}
		root.children = append(root.children, js)
	}

	// Body images; the first is the hero. Images share origins with
	// scripts and stylesheets, as on real sites — which is what makes
	// HTTP/1.1 head-of-line blocking bite.
	nImg := p.NumImages.sampleInt(r)
	for i := 0; i < nImg; i++ {
		host := d.fpImg
		switch v := r.Float64(); {
		case v < 0.3:
			host = d.cdns[r.Intn(len(d.cdns))]
		case v < 0.55:
			host = d.fpStatic
		}
		img := s.newSlot(Image, p.ImageSize.sampleSize(r), s.contentPersist(r), host, "/img", fmt.Sprintf("photo%d", i), "jpg")
		switch {
		case i == 0:
			img.size = int(float64(img.size) * 2.5) // hero
			img.viewport = 0.25
			img.persist = Hourly
		case i < 8:
			img.viewport = 0.03
		}
		if r.Float64() < p.FracDeviceVariant {
			img.variant = variantKind(r)
		}
		root.children = append(root.children, img)
	}

	// Favicon.
	icon := s.newSlot(Other, 2e3, Permanent, d.fp, "", "favicon", "ico")
	root.children = append(root.children, icon)

	// Ad iframes: stable src URL, personalized volatile content.
	for i, n := 0, p.NumIframes.sampleInt(r); i < n; i++ {
		adHost := d.ads[r.Intn(len(d.ads))]
		frame := s.newSlot(HTML, p.IframeHTMLSize.sampleSize(r), Permanent, adHost, "/serve", fmt.Sprintf("slot%d", i), "html")
		frame.personalized = true
		if i == 0 {
			frame.viewport = 0.05
		}
		adJS := s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, adHost, "/js", fmt.Sprintf("adlib%d", i), "js")
		adJS.inIframe = true
		for j, m := 0, p.AdImages.sampleInt(r); j < m; j++ {
			creative := s.newSlot(Image, p.ImageSize.sampleSize(r), Volatile, adHost, "/creative", fmt.Sprintf("c%d_%d", i, j), "jpg")
			creative.inIframe = true
			adJS.children = append(adJS.children, creative)
		}
		frame.children = append(frame.children, adJS)
		root.children = append(root.children, frame)
	}

	// Async scripts at the end of the body: analytics, tag managers,
	// social widgets.
	nAsync := p.NumAsyncJS.sampleInt(r)
	for i := 0; i < nAsync; i++ {
		host := d.trackers[r.Intn(len(d.trackers))]
		if i == 0 && r.Float64() < 0.5 {
			host = d.social
		}
		js := s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, host, "/js", fmt.Sprintf("tag%d", i), "js")
		js.async = true
		if r.Float64() < p.FracUserStateJS {
			js.userState = true
		}
		if r.Float64() < p.FracVolatileBeacons {
			px := s.newSlot(Image, 700, Volatile, host, "/px", fmt.Sprintf("b%d", i), "gif")
			js.children = append(js.children, px)
		}
		// Tag-manager chains load further scripts.
		for j, m := 0, p.TrackerChain.sampleInt(r); j < m; j++ {
			sub := s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, host, "/js", fmt.Sprintf("tag%d_%d", i, j), "js")
			sub.async = true
			if r.Float64() < p.FracVolatileBeacons {
				px := s.newSlot(Image, 700, Volatile, host, "/px", fmt.Sprintf("b%d_%d", i, j), "gif")
				sub.children = append(sub.children, px)
			}
			js.children = append(js.children, sub)
		}
		root.children = append(root.children, js)
	}

	// XHR/JSON data fetched by app scripts.
	if nSync > 0 {
		for i, n := 0, p.NumXHR.sampleInt(r); i < n; i++ {
			persist := Hourly
			if r.Float64() < p.FracVolatileXHR {
				persist = Volatile // live tickers, products on sale
			}
			xhr := s.newSlot(JSON, p.JSONSize.sampleSize(r), persist, d.fp, "/api", fmt.Sprintf("feed%d", i), "json")
			// Attach round-robin to sync scripts after the framework.
			parent := root.children[nCSS+(i%nSync)]
			parent.children = append(parent.children, xhr)
		}
	}
	return root
}

// addJSChildren gives a script its fetched resources.
func (s *Site) addJSChildren(r *rand.Rand, js *slot, inIframe bool) {
	p := s.Params
	d := s.domains
	for j, n := 0, p.JSChildren.sampleInt(r); j < n; j++ {
		v := r.Float64()
		var child *slot
		switch {
		case v < 0.55:
			child = s.newSlot(Image, p.ImageSize.sampleSize(r), s.contentPersist(r), d.fpImg, "/img", fmt.Sprintf("lazy%d_%d", js.id, j), "jpg")
		case v < 0.8:
			child = s.newSlot(JSON, p.JSONSize.sampleSize(r), Hourly, d.fp, "/api", fmt.Sprintf("data%d_%d", js.id, j), "json")
		default:
			child = s.newSlot(JS, p.JSSize.sampleSize(r)/2, Permanent, js.host, "/js", fmt.Sprintf("mod%d_%d", js.id, j), "js")
		}
		child.inIframe = inIframe
		if js.userState {
			child.persist = Volatile
		}
		js.children = append(js.children, child)
	}
}

func variantKind(r *rand.Rand) variantGroup {
	if r.Float64() < 0.8 {
		return variantPhones
	}
	return variantAll
}

// Snapshot materializes the site at time at for client profile p. nonce
// distinguishes back-to-back loads: volatile resources get fresh URLs for
// every nonce.
func (s *Site) Snapshot(at time.Time, p Profile, nonce uint64) *Snapshot {
	sn := &Snapshot{
		Site:      s,
		Time:      at,
		Profile:   p,
		Nonce:     nonce,
		Root:      s.RootURL(),
		resources: make(map[string]*Resource),
	}
	s.materialize(sn, s.root, "", at, p, nonce, false)
	s.render(sn)
	return sn
}

// materialize walks the slot tree creating Resources with final URLs.
func (s *Site) materialize(sn *Snapshot, sl *slot, parent string, at time.Time, p Profile, nonce uint64, parentPersonalized bool) *Resource {
	u := s.slotURL(sl, at, p, nonce, parentPersonalized)
	key := u.String()
	if r, ok := sn.resources[key]; ok {
		return r // merged duplicate (two parents producing one URL)
	}
	thirdPartyScript := sl.typ == JS && s.isTrackerHost(sl.host)
	cacheable, ttl := cachePolicy(sl.persist, sl.typ, s.cacheDraw(sl.id), thirdPartyScript)
	res := &Resource{
		URL:            u,
		Type:           sl.typ,
		Size:           sl.size,
		Async:          sl.async,
		Parent:         parent,
		InIframe:       sl.inIframe,
		Cacheable:      cacheable,
		TTL:            ttl,
		Unpredictable:  sl.persist == Volatile,
		Persist:        sl.persist,
		ViewportWeight: sl.viewport,
		Personalized:   sl.personalized || parentPersonalized,
		UsesUserState:  sl.userState,
		ParserBlocking: sl.blocking,
	}
	sn.add(res)
	childPersonalized := parentPersonalized || sl.personalized
	for _, c := range sl.children {
		cr := s.materialize(sn, c, key, at, p, nonce, childPersonalized)
		res.Children = append(res.Children, cr.URL.String())
	}
	return res
}

// isTrackerHost reports whether host is an analytics, ad, or social
// domain, whose scripts are served with short cache lifetimes.
func (s *Site) isTrackerHost(host string) bool {
	if host == s.domains.social {
		return true
	}
	for _, h := range s.domains.trackers {
		if host == h {
			return true
		}
	}
	for _, h := range s.domains.ads {
		if host == h {
			return true
		}
	}
	return false
}

// cacheDraw derives a stable pseudo-random value in [0,1) for a slot's
// cache-header assignment.
func (s *Site) cacheDraw(id int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "cache|%d|%d", s.Seed, id)
	return float64(h.Sum64()%10000) / 10000
}

// slotURL computes the concrete URL for a slot in a given materialization.
func (s *Site) slotURL(sl *slot, at time.Time, p Profile, nonce uint64, parentPersonalized bool) urlutil.URL {
	if sl == s.root {
		return s.RootURL()
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d", s.Seed, sl.id)
	switch sl.persist {
	case Hourly:
		fmt.Fprintf(h, "|h%d", at.Unix()/3600)
	case Daily:
		fmt.Fprintf(h, "|d%d", at.Unix()/86400)
	case Weekly:
		fmt.Fprintf(h, "|w%d", at.Unix()/604800)
	case Volatile:
		fmt.Fprintf(h, "|v%d", nonce)
	}
	if parentPersonalized {
		// Children of personalized HTML embed the user identity: different
		// users see different campaign resources.
		fmt.Fprintf(h, "|u%d", p.UserID)
	}
	token := fmt.Sprintf("%010x", h.Sum64()&0xffffffffff)
	suffix := ""
	switch sl.variant {
	case variantPhones:
		if p.Device == Tablet {
			suffix = "_tab"
		} else {
			suffix = "_ph"
		}
	case variantAll:
		switch p.Device {
		case PhoneSmall:
			suffix = "_sm"
		case PhoneLarge:
			suffix = "_lg"
		case Tablet:
			suffix = "_tab"
		}
	}
	path := fmt.Sprintf("%s/%s-%s%s.%s", sl.dir, sl.base, token, suffix, sl.ext)
	return urlutil.URL{Scheme: "https", Host: sl.host, Path: path}
}
