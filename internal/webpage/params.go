package webpage

import (
	"math/rand"
	"time"
)

// Params are the per-category shape parameters of the corpus generator.
// Defaults are calibrated against the HTTP Archive statistics the paper
// cites: ~100 resources on the average mobile page with HTML/CSS/JS around
// a quarter of the bytes [7], News/Sports pages more complex than the
// average site [21], and ~22% of URLs changing across back-to-back loads on
// the median Top-100 page (§4.1.1).
type Params struct {
	NumCSS     meanSD
	NumSyncJS  meanSD
	NumAsyncJS meanSD
	NumImages  meanSD
	NumFonts   meanSD
	NumIframes meanSD
	NumXHR     meanSD

	// Per-parent child counts.
	CSSImages    meanSD // url() images per stylesheet
	JSChildren   meanSD // resources fetched per script
	AdImages     meanSD // creatives per ad iframe
	TrackerChain meanSD // extra scripts a tag manager loads

	// Size distributions, bytes (lognormal around mean with spread).
	RootHTMLSize   meanSD
	IframeHTMLSize meanSD
	CSSSize        meanSD
	JSSize         meanSD
	ImageSize      meanSD
	FontSize       meanSD
	JSONSize       meanSD

	// Persistence mix for content resources (images, story JSON/JS).
	FracHourly, FracDaily, FracWeekly float64

	// FracVolatileBeacons is the share of async scripts that fire a
	// per-load beacon.
	FracVolatileBeacons float64
	// FracVolatileXHR is the share of data feeds that differ per load
	// (live tickers, per-session recommendations, products on sale).
	FracVolatileXHR float64
	// FracUserStateJS is the share of scripts whose fetches depend on
	// user-specific state (excluded from hints via offline filtering).
	FracUserStateJS float64
	// FracBlockingChains is the share of synchronous scripts that
	// document.write a further synchronous script (parser-blocking
	// chains).
	FracBlockingChains float64
	// FracDeviceVariant is the share of images served in device-specific
	// variants.
	FracDeviceVariant float64
}

type meanSD struct {
	Mean, SD float64
	Min      int
}

func (m meanSD) sampleInt(r *rand.Rand) int {
	v := int(m.Mean + m.SD*r.NormFloat64() + 0.5)
	if v < m.Min {
		v = m.Min
	}
	return v
}

func (m meanSD) sampleSize(r *rand.Rand) int {
	// Lognormal-ish: skewed right, floor at Min.
	v := int(m.Mean * (0.55 + 0.9*r.ExpFloat64()*0.5))
	if f := m.SD * r.NormFloat64(); f > 0 {
		v += int(f)
	}
	if v < m.Min {
		v = m.Min
	}
	return v
}

// DefaultParams returns the generator parameters for a category.
func DefaultParams(cat Category) Params {
	p := Params{
		NumCSS:     meanSD{3, 1, 1},
		NumSyncJS:  meanSD{6, 2, 2},
		NumAsyncJS: meanSD{6, 2, 1},
		NumImages:  meanSD{38, 10, 10},
		NumFonts:   meanSD{3, 1, 0},
		NumIframes: meanSD{2, 1, 0},
		NumXHR:     meanSD{3, 1, 0},

		CSSImages:    meanSD{2, 1, 0},
		JSChildren:   meanSD{0.8, 0.8, 0},
		AdImages:     meanSD{3, 1, 1},
		TrackerChain: meanSD{0.8, 0.7, 0},

		RootHTMLSize:   meanSD{55e3, 15e3, 8e3},
		IframeHTMLSize: meanSD{6e3, 2e3, 1e3},
		CSSSize:        meanSD{24e3, 10e3, 2e3},
		JSSize:         meanSD{22e3, 11e3, 2e3},
		ImageSize:      meanSD{18e3, 11e3, 1e3},
		FontSize:       meanSD{30e3, 10e3, 8e3},
		JSONSize:       meanSD{6e3, 3e3, 500},

		FracHourly: 0.28, FracDaily: 0.10, FracWeekly: 0.10,
		FracVolatileBeacons: 0.75,
		FracVolatileXHR:     0.30,
		FracUserStateJS:     0.08,
		FracBlockingChains:  0.35,
		FracDeviceVariant:   0.20,
	}
	switch cat {
	case Shopping:
		p.NumImages = meanSD{55, 14, 20} // product grids
		p.NumXHR = meanSD{8, 2, 3}       // inventory, pricing, recommendations
		p.FracHourly = 0.40              // product sets rotate quickly
		p.FracUserStateJS = 0.30         // personalization-heavy scripts
		p.FracVolatileXHR = 0.75         // products on sale picked per load
		p.JSChildren = meanSD{1.4, 0.9, 0}
	case News, Sports:
		p.NumCSS = meanSD{5, 2, 2}
		p.NumSyncJS = meanSD{11, 3, 4}
		p.NumAsyncJS = meanSD{11, 3, 3}
		p.NumImages = meanSD{75, 18, 30}
		p.NumFonts = meanSD{4, 1, 1}
		p.NumIframes = meanSD{4, 2, 1}
		p.NumXHR = meanSD{5, 2, 1}
		p.RootHTMLSize = meanSD{85e3, 25e3, 20e3}
		p.FracHourly = 0.34
		p.FracBlockingChains = 0.45
	}
	return p
}

// cachePolicy assigns HTTP cache headers by persistence class: static
// assets usually get long TTLs, rotating content short ones, volatile
// content none. draw in [0,1) is a stable per-resource random value — real
// corpora mix cacheable and uncacheable resources even within a class
// (missing headers, no-store CDNs, vary-by-cookie).
func cachePolicy(p PersistClass, t ResourceType, draw float64, thirdPartyScript bool) (bool, time.Duration) {
	if t == HTML {
		return false, 0 // documents are not cached in these experiments
	}
	if thirdPartyScript {
		// Tag managers, analytics, and ad libraries ship with no-cache or
		// very short TTLs so deployments can be updated at will.
		if draw < 0.3 {
			return true, time.Hour
		}
		return false, 0
	}
	switch p {
	case Permanent:
		// Real deployments often cap TTLs conservatively even on stable
		// assets; those revalidate with 304s on later visits.
		if draw < 0.6 {
			return true, 30 * 24 * time.Hour
		}
		if draw < 0.85 {
			return true, time.Hour
		}
	case Weekly:
		if draw < 0.75 {
			return true, 7 * 24 * time.Hour
		}
	case Daily:
		if draw < 0.75 {
			return true, 24 * time.Hour
		}
	case Hourly:
		if draw < 0.40 {
			return true, time.Hour
		}
	}
	return false, 0
}
