package webpage

import (
	"fmt"
	"strings"
)

// render produces the actual bodies for every resource the browser parses or
// executes. Bodies embed exactly the resource's children URLs using the
// appropriate idiom (tags in HTML, url()/@import in CSS, fetch idioms in JS)
// so that discovery in the simulated browser — and in Vroom's server-side
// online analysis — is driven by real parsing rather than a side channel.
func (s *Site) render(sn *Snapshot) {
	for _, key := range sn.order {
		res := sn.resources[key]
		switch res.Type {
		case HTML:
			res.Body = renderHTML(sn, res)
		case CSS:
			res.Body = renderCSS(sn, res)
		case JS:
			res.Body = renderJS(sn, res)
		default:
			continue // binary resources carry only a size
		}
		if len(res.Body) > res.Size {
			res.Size = len(res.Body)
		}
	}
}

func renderHTML(sn *Snapshot, res *Resource) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", sn.Site.Name)
	var body strings.Builder
	var inlineFetches []string
	imgCount := 0
	for _, cu := range res.Children {
		child, ok := sn.resources[cu]
		if !ok {
			continue
		}
		switch child.Type {
		case CSS:
			fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=\"%s\">\n", cu)
		case Font:
			fmt.Fprintf(&b, "<link rel=\"preload\" as=\"font\" href=\"%s\" crossorigin>\n", cu)
		case JS:
			if child.Async {
				fmt.Fprintf(&body, "<script async src=\"%s\"></script>\n", cu)
			} else {
				fmt.Fprintf(&b, "<script src=\"%s\"></script>\n", cu)
			}
		case Image:
			fmt.Fprintf(&body, "<figure><img src=\"%s\" alt=\"photo %d\"><figcaption>Story %d</figcaption></figure>\n", cu, imgCount, imgCount)
			imgCount++
		case HTML:
			fmt.Fprintf(&body, "<iframe src=\"%s\" width=\"300\" height=\"250\"></iframe>\n", cu)
		case Other:
			fmt.Fprintf(&b, "<link rel=\"icon\" href=\"%s\">\n", cu)
		case Media:
			fmt.Fprintf(&body, "<video src=\"%s\"></video>\n", cu)
		case JSON:
			inlineFetches = append(inlineFetches, cu)
		}
	}
	if len(inlineFetches) > 0 {
		body.WriteString("<script>\n")
		for _, cu := range inlineFetches {
			fmt.Fprintf(&body, "fetch(\"%s\").then(function(r){ return r.json(); });\n", cu)
		}
		body.WriteString("</script>\n")
	}
	b.WriteString("</head>\n<body>\n<header><h1>Latest headlines</h1></header>\n")
	b.WriteString(body.String())
	b.WriteString("<footer>&copy; generated corpus</footer>\n</body>\n</html>\n")
	return padHTML(b.String(), res.Size)
}

func renderCSS(sn *Snapshot, res *Resource) string {
	var b strings.Builder
	b.WriteString("/* generated stylesheet */\nbody{margin:0;font:16px/1.4 sans-serif;color:#222}\n")
	cls := 0
	for _, cu := range res.Children {
		child, ok := sn.resources[cu]
		if !ok {
			continue
		}
		switch child.Type {
		case CSS:
			fmt.Fprintf(&b, "@import \"%s\";\n", cu)
		case Font:
			fmt.Fprintf(&b, "@font-face{font-family:\"Face%d\";src:url(\"%s\") format(\"woff2\");font-display:swap}\n", cls, cu)
		default:
			fmt.Fprintf(&b, ".bg%d{background-image:url(%s);background-size:cover}\n", cls, cu)
		}
		cls++
	}
	return padComment(b.String(), res.Size, "/*", "*/")
}

func renderJS(sn *Snapshot, res *Resource) string {
	var b strings.Builder
	b.WriteString("(function(){\n\"use strict\";\n")
	if res.UsesUserState {
		b.WriteString("var session = String(Date.now()) + Math.random();\n")
	}
	n := 0
	for _, cu := range res.Children {
		child, ok := sn.resources[cu]
		if !ok {
			continue
		}
		switch child.Type {
		case Image:
			fmt.Fprintf(&b, "var img%d = new Image();\nimg%d.src = \"%s\";\n", n, n, cu)
		case JSON:
			fmt.Fprintf(&b, "fetch(\"%s\").then(function(r){ return r.json(); });\n", cu)
		case JS:
			if child.ParserBlocking {
				fmt.Fprintf(&b, "document.write('<script src=\"%s\"></scr' + 'ipt>');\n", cu)
			} else {
				fmt.Fprintf(&b, "var s%d = document.createElement(\"script\");\ns%d.src = \"%s\";\ndocument.head.appendChild(s%d);\n", n, n, cu, n)
			}
		case HTML:
			fmt.Fprintf(&b, "document.write('<iframe src=\"%s\"></iframe>');\n", cu)
		default:
			fmt.Fprintf(&b, "var x%d = new Image();\nx%d.src = \"%s\";\n", n, n, cu)
		}
		n++
	}
	b.WriteString("})();\n")
	return padComment(b.String(), res.Size, "//", "")
}

// padHTML pads doc with an HTML comment so len(result) == size when size
// exceeds the rendered length.
func padHTML(doc string, size int) string {
	return padWith(doc, size, "<!--", "-->")
}

func padComment(doc string, size int, open, close string) string {
	return padWith(doc, size, open, close)
}

func padWith(doc string, size int, open, close string) string {
	need := size - len(doc) - len(open) - len(close) - 2
	if need <= 0 {
		return doc
	}
	var b strings.Builder
	b.Grow(size)
	b.WriteString(doc)
	b.WriteString(open)
	b.WriteByte(' ')
	const filler = "lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod tempor "
	for need > 0 {
		chunk := filler
		if need < len(chunk) {
			chunk = chunk[:need]
		}
		b.WriteString(chunk)
		need -= len(chunk)
	}
	b.WriteByte(' ')
	b.WriteString(close)
	return b.String()
}
