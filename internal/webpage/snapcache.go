package webpage

import (
	"sync"
	"time"
)

// SnapshotCache memoizes Site.Snapshot materializations. A snapshot is a
// pure function of (site, time, profile, nonce), so one materialization can
// back every load that needs it — the five archive snapshots runner.Run
// builds per load, and the per-nonce measured snapshots repeated across the
// policies of one figure. Cached snapshots are shared: callers must treat
// them as read-only (everything in the load path already does).
//
// The cache is safe for concurrent use and deduplicates in-flight work: two
// workers asking for the same key materialize it once, with the loser
// blocking until the winner finishes. Entries are keyed by *Site, so a
// cache's lifetime should not exceed its corpus's (dropping the cache frees
// the snapshots).
type SnapshotCache struct {
	mu           sync.Mutex
	m            map[snapKey]*snapEntry
	hits, misses int64
}

type snapKey struct {
	site    *Site
	at      int64 // UnixNano; snapshots never use sub-nanosecond times
	profile Profile
	nonce   uint64
}

type snapEntry struct {
	once sync.Once
	sn   *Snapshot
}

// NewSnapshotCache returns an empty cache.
func NewSnapshotCache() *SnapshotCache {
	return &SnapshotCache{m: make(map[snapKey]*snapEntry)}
}

// Snapshot returns the memoized materialization of site at the given time,
// profile, and nonce, building it on first use.
func (c *SnapshotCache) Snapshot(site *Site, at time.Time, p Profile, nonce uint64) *Snapshot {
	key := snapKey{site: site, at: at.UnixNano(), profile: p, nonce: nonce}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &snapEntry{}
		c.m[key] = e
		c.misses++
	} else {
		// In-flight dedup counts as a hit: the work is done once either way.
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.sn = site.Snapshot(at, p, nonce) })
	return e.sn
}

// Len returns the number of cached snapshots.
func (c *SnapshotCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many Snapshot calls were served from the cache (hits)
// versus materialized fresh (misses).
func (c *SnapshotCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
