package webpage

import (
	"sync"
	"testing"
	"time"
)

func TestSnapshotCacheSharesAndKeys(t *testing.T) {
	site := NewSite("cachetest", News, 7)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	p := Profile{Device: PhoneSmall, UserID: 11}
	c := NewSnapshotCache()

	a := c.Snapshot(site, at, p, 1)
	if b := c.Snapshot(site, at, p, 1); b != a {
		t.Error("same key returned a different snapshot")
	}
	if b := c.Snapshot(site, at, p, 2); b == a {
		t.Error("different nonce shared a snapshot")
	}
	if b := c.Snapshot(site, at.Add(time.Hour), p, 1); b == a {
		t.Error("different time shared a snapshot")
	}
	if b := c.Snapshot(site, at, Profile{Device: Tablet, UserID: 11}, 1); b == a {
		t.Error("different profile shared a snapshot")
	}
	if c.Len() != 4 {
		t.Errorf("cache holds %d entries, want 4", c.Len())
	}
	// A cached snapshot is the same materialization an uncached call makes.
	fresh := site.Snapshot(at, p, 1)
	if fresh.Len() != a.Len() || fresh.Root != a.Root {
		t.Errorf("cached snapshot diverges: %d resources vs %d", a.Len(), fresh.Len())
	}
}

func TestSnapshotCacheConcurrentSingleBuild(t *testing.T) {
	site := NewSite("cachetest", News, 7)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	p := Profile{Device: PhoneSmall, UserID: 11}
	c := NewSnapshotCache()

	const n = 16
	got := make([]*Snapshot, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[i] = c.Snapshot(site, at, p, 1)
		}()
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if got[i] != got[0] {
			t.Fatal("concurrent gets built distinct snapshots")
		}
	}
}
