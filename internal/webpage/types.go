// Package webpage models web pages for the Vroom reproduction: typed
// resources with real HTML/CSS/JS bodies, cross-domain dependency structure,
// content churn over time, per-load unpredictability (ads), device-class
// variants, and cookie personalization.
//
// A Site is a generative model of one website; materializing it at a point
// in time for a client profile yields a Snapshot — the exact set of
// resources (with rendered bodies) one page load would touch, playing the
// role of a Mahimahi recording.
package webpage

import (
	"fmt"
	"time"

	"vroom/internal/urlutil"
)

// ResourceType is the content type of a resource.
type ResourceType int

// Resource types.
const (
	HTML ResourceType = iota
	CSS
	JS
	Image
	Font
	Media
	JSON
	Other
)

func (t ResourceType) String() string {
	switch t {
	case HTML:
		return "html"
	case CSS:
		return "css"
	case JS:
		return "js"
	case Image:
		return "image"
	case Font:
		return "font"
	case Media:
		return "media"
	case JSON:
		return "json"
	case Other:
		return "other"
	}
	return "unknown"
}

// NeedsProcessing reports whether the type must be parsed or executed by the
// browser main thread (HTML, CSS, JS). These are Vroom's high-priority
// resources (§4.3).
func (t ResourceType) NeedsProcessing() bool {
	return t == HTML || t == CSS || t == JS
}

// PersistClass is the ground-truth churn class of a resource (Fig. 7).
type PersistClass int

// Persistence classes.
const (
	// Permanent resources never rotate (logos, frameworks, stylesheets).
	Permanent PersistClass = iota
	// Hourly resources rotate every content-refresh period (news stories).
	Hourly
	// Daily resources rotate once a day (featured sections).
	Daily
	// Weekly resources rotate weekly (seasonal banners).
	Weekly
	// Volatile resources differ on every load (ad creatives, beacons).
	Volatile
)

func (p PersistClass) String() string {
	switch p {
	case Permanent:
		return "permanent"
	case Hourly:
		return "hourly"
	case Daily:
		return "daily"
	case Weekly:
		return "weekly"
	case Volatile:
		return "volatile"
	}
	return "unknown"
}

// DeviceClass groups client devices that receive the same resource variants
// (§4.1.2: device equivalence classes).
type DeviceClass int

// Device classes. PhoneSmall and PhoneLarge mostly share variants (Nexus 6
// vs OnePlus 3 in Fig. 9); Tablet diverges (Nexus 10).
const (
	PhoneSmall DeviceClass = iota
	PhoneLarge
	Tablet
)

func (d DeviceClass) String() string {
	switch d {
	case PhoneSmall:
		return "phone-small"
	case PhoneLarge:
		return "phone-large"
	case Tablet:
		return "tablet"
	}
	return "unknown"
}

// Profile identifies a client for personalization and device-variant
// purposes. UserID seeds cookie-dependent content; UserID 0 is an anonymous
// (cookie-less) client such as a server-side crawler.
type Profile struct {
	Device DeviceClass
	UserID int64
}

// Category is the site category; News and Sports pages are more complex
// than the average Top-100 page (§2).
type Category int

// Site categories.
const (
	Top100 Category = iota
	News
	Sports
	// Shopping pages carry the §4.1.1 dynamism example: the set of
	// products (and products on sale) changes often and is partly
	// selected by scripts at load time.
	Shopping
)

func (c Category) String() string {
	switch c {
	case Top100:
		return "top100"
	case News:
		return "news"
	case Sports:
		return "sports"
	case Shopping:
		return "shopping"
	}
	return "unknown"
}

// Resource is one fetchable object in a snapshot.
type Resource struct {
	URL  urlutil.URL
	Type ResourceType
	// Size is the transfer size in bytes. For HTML/CSS/JS it equals
	// len(Body).
	Size int
	// Body is the rendered content for resources the browser parses or
	// executes. Binary resources have an empty body.
	Body string
	// Async marks scripts declared async/defer and lazily loaded objects;
	// Vroom classifies their hints as "x-semi-important" (Table 1).
	Async bool
	// ParserBlocking marks scripts injected via document.write by another
	// synchronous script; they block the injecting document's parser.
	ParserBlocking bool
	// Parent is the URL string of the resource whose processing references
	// this one ("" for the root document).
	Parent string
	// Children are URL strings referenced by this resource's body, in
	// document order (generator ground truth; browsers re-derive them by
	// parsing Body).
	Children []string
	// InIframe marks descendants of an embedded (typically third-party)
	// HTML document. Vroom treats them as low priority and never hints
	// them from the outer document's server (§4.2, footnote 4).
	InIframe bool
	// Cacheable/TTL model HTTP caching headers for warm-cache experiments.
	Cacheable bool
	TTL       time.Duration
	// Unpredictable is ground truth: the URL differs across back-to-back
	// loads (ad nonces, user-state-dependent fetches).
	Unpredictable bool
	// Persist is the ground-truth churn class.
	Persist PersistClass
	// ViewportWeight in [0,1] is the resource's contribution to
	// above-the-fold visual completeness (images and the root document
	// dominate).
	ViewportWeight float64
	// Personalized marks content that depends on the user's cookie for
	// the serving domain.
	Personalized bool
	// UsesUserState marks scripts that consult user-specific state
	// (Date.now/Math.random/cookies); their fetches are unpredictable.
	UsesUserState bool
}

// IsHighPriority reports whether Vroom treats this resource as high
// priority: it must be processed and it is not an iframe descendant and not
// declared async.
func (r *Resource) IsHighPriority() bool {
	return r.Type.NeedsProcessing() && !r.InIframe && !r.Async
}

// Snapshot is one consistent materialization of a site: the full set of
// resources a single page load touches, with rendered bodies.
type Snapshot struct {
	Site    *Site
	Time    time.Time
	Profile Profile
	Nonce   uint64
	Root    urlutil.URL

	resources map[string]*Resource
	order     []string
}

// Lookup returns the resource with the given URL.
func (sn *Snapshot) Lookup(u urlutil.URL) (*Resource, bool) {
	r, ok := sn.resources[u.String()]
	return r, ok
}

// LookupString returns the resource for a URL string.
func (sn *Snapshot) LookupString(u string) (*Resource, bool) {
	r, ok := sn.resources[u]
	return r, ok
}

// RootResource returns the root HTML document.
func (sn *Snapshot) RootResource() *Resource {
	return sn.resources[sn.Root.String()]
}

// Ordered returns all resources in deterministic generation order (root
// first, then breadth-first by declaration).
func (sn *Snapshot) Ordered() []*Resource {
	out := make([]*Resource, 0, len(sn.order))
	for _, k := range sn.order {
		out = append(out, sn.resources[k])
	}
	return out
}

// Len returns the number of resources in the snapshot.
func (sn *Snapshot) Len() int { return len(sn.order) }

// URLSet returns the set of resource URL strings.
func (sn *Snapshot) URLSet() map[string]bool {
	set := make(map[string]bool, len(sn.order))
	for _, k := range sn.order {
		set[k] = true
	}
	return set
}

// TotalBytes returns the sum of all resource sizes, and the subset that
// needs processing (the paper: HTML/CSS/JS are ~25% of page bytes).
func (sn *Snapshot) TotalBytes() (total, processed int64) {
	for _, k := range sn.order {
		r := sn.resources[k]
		total += int64(r.Size)
		if r.Type.NeedsProcessing() {
			processed += int64(r.Size)
		}
	}
	return total, processed
}

func (sn *Snapshot) add(r *Resource) {
	key := r.URL.String()
	if _, dup := sn.resources[key]; dup {
		panic(fmt.Sprintf("webpage: duplicate resource %s", key))
	}
	sn.resources[key] = r
	sn.order = append(sn.order, key)
}
