package webpage

import (
	"testing"
	"time"
)

var t0 = time.Date(2017, 8, 21, 9, 0, 0, 0, time.UTC)

func testSite(t *testing.T, cat Category, seed int64) *Site {
	t.Helper()
	return NewSite("example", cat, seed)
}

func TestSnapshotDeterministic(t *testing.T) {
	s := testSite(t, News, 42)
	a := s.Snapshot(t0, Profile{Device: PhoneSmall, UserID: 7}, 1)
	b := s.Snapshot(t0, Profile{Device: PhoneSmall, UserID: 7}, 1)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	ra, rb := a.Ordered(), b.Ordered()
	for i := range ra {
		if ra[i].URL != rb[i].URL {
			t.Fatalf("resource %d differs: %s vs %s", i, ra[i].URL, rb[i].URL)
		}
		if ra[i].Body != rb[i].Body {
			t.Fatalf("body %d differs for %s", i, ra[i].URL)
		}
	}
}

func TestCrawlMatchesGroundTruth(t *testing.T) {
	for _, cat := range []Category{Top100, News, Sports} {
		s := testSite(t, cat, int64(100+cat))
		sn := s.Snapshot(t0, Profile{Device: PhoneLarge, UserID: 3}, 9)
		crawled := CrawlURLSet(sn)
		truth := sn.URLSet()
		for u := range truth {
			if !crawled[u] {
				res, _ := sn.LookupString(u)
				t.Errorf("%v: generated resource not discovered by crawl: %s (type %s, parent %s)", cat, u, res.Type, res.Parent)
			}
		}
		for u := range crawled {
			if !truth[u] {
				t.Errorf("%v: crawl found URL not in snapshot: %s", cat, u)
			}
		}
		if t.Failed() {
			return
		}
	}
}

func TestBackToBackLoadsDifferOnlyInVolatile(t *testing.T) {
	s := testSite(t, News, 7)
	p := Profile{Device: PhoneSmall, UserID: 2}
	a := s.Snapshot(t0, p, 1)
	b := s.Snapshot(t0, p, 2)
	aSet, bSet := a.URLSet(), b.URLSet()
	for _, r := range a.Ordered() {
		key := r.URL.String()
		if r.Unpredictable {
			if bSet[key] {
				t.Errorf("volatile resource %s persisted across back-to-back loads", key)
			}
		} else if !bSet[key] {
			t.Errorf("stable resource %s (%s) missing from second load", key, r.Persist)
		}
	}
	// And some URLs must actually change.
	changed := 0
	for u := range aSet {
		if !bSet[u] {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("no volatile resources at all; generator misconfigured")
	}
	frac := float64(changed) / float64(len(aSet))
	if frac > 0.45 {
		t.Errorf("back-to-back churn fraction %.2f implausibly high", frac)
	}
}

func TestHourlyChurn(t *testing.T) {
	s := testSite(t, News, 11)
	p := Profile{Device: PhoneSmall, UserID: 2}
	a := s.Snapshot(t0, p, 1)
	b := s.Snapshot(t0.Add(time.Hour), p, 1)
	bSet := b.URLSet()
	stable, total := 0, 0
	for _, r := range a.Ordered() {
		if r.Unpredictable || r.URL == a.Root {
			continue // the root document's URL never changes
		}
		total++
		if bSet[r.URL.String()] {
			stable++
		}
		if r.Persist == Permanent && !bSet[r.URL.String()] {
			t.Errorf("permanent resource %s changed across an hour", r.URL)
		}
		if r.Persist == Hourly && bSet[r.URL.String()] {
			t.Errorf("hourly resource %s did not rotate across an hour boundary", r.URL)
		}
	}
	if total == 0 || stable == 0 {
		t.Fatal("degenerate churn test")
	}
	frac := float64(stable) / float64(total)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("1-hour persistence %.2f outside plausible band (paper: ~0.7 median)", frac)
	}
}

func TestDeviceVariants(t *testing.T) {
	s := testSite(t, Top100, 13)
	sm := s.Snapshot(t0, Profile{Device: PhoneSmall, UserID: 2}, 1).URLSet()
	lg := s.Snapshot(t0, Profile{Device: PhoneLarge, UserID: 2}, 1).URLSet()
	tab := s.Snapshot(t0, Profile{Device: Tablet, UserID: 2}, 1).URLSet()
	iouPhone := iou(sm, lg)
	iouTablet := iou(sm, tab)
	if iouPhone <= iouTablet {
		t.Errorf("phones should be more similar than phone-tablet: phone IoU %.3f, tablet IoU %.3f", iouPhone, iouTablet)
	}
	if iouTablet == 1 {
		t.Error("tablet snapshot identical to phone; device variants not applied")
	}
}

func iou(a, b map[string]bool) float64 {
	inter, union := 0, 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	union = len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func TestPersonalizationScopedToIframes(t *testing.T) {
	s := testSite(t, News, 17)
	u1 := s.Snapshot(t0, Profile{Device: PhoneSmall, UserID: 1}, 1)
	u2 := s.Snapshot(t0, Profile{Device: PhoneSmall, UserID: 2}, 1)
	set2 := u2.URLSet()
	for _, r := range u1.Ordered() {
		key := r.URL.String()
		if !r.Personalized && !r.Unpredictable && !set2[key] {
			t.Errorf("non-personalized stable resource %s differs across users", key)
		}
	}
}

func TestByteMix(t *testing.T) {
	// HTML/CSS/JS should be a modest fraction of total bytes (paper: ~25%).
	var totalAll, procAll int64
	for i := 0; i < 10; i++ {
		s := NewSite("mixcheck", News, int64(1000+i))
		sn := s.Snapshot(t0, Profile{}, 1)
		tot, proc := sn.TotalBytes()
		totalAll += tot
		procAll += proc
	}
	frac := float64(procAll) / float64(totalAll)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("processed-bytes fraction %.2f outside [0.15,0.45]", frac)
	}
}

func TestResourceCounts(t *testing.T) {
	top := NewSite("a", Top100, 1).Snapshot(t0, Profile{}, 1).Len()
	news := NewSite("b", News, 2).Snapshot(t0, Profile{}, 1).Len()
	if top < 40 || top > 250 {
		t.Errorf("top100 resource count %d implausible", top)
	}
	if news < 80 || news > 500 {
		t.Errorf("news resource count %d implausible", news)
	}
}

func TestBodiesPaddedToSize(t *testing.T) {
	s := testSite(t, News, 23)
	sn := s.Snapshot(t0, Profile{}, 1)
	for _, r := range sn.Ordered() {
		if r.Type.NeedsProcessing() && len(r.Body) != r.Size {
			t.Errorf("%s: body length %d != size %d", r.URL, len(r.Body), r.Size)
		}
		if !r.Type.NeedsProcessing() && r.Type != JSON && r.Body != "" {
			t.Errorf("%s: binary resource has a body", r.URL)
		}
	}
}

func TestHighPriorityClassification(t *testing.T) {
	s := testSite(t, News, 29)
	sn := s.Snapshot(t0, Profile{}, 1)
	var high, low int
	for _, r := range sn.Ordered() {
		if r.IsHighPriority() {
			high++
			if !r.Type.NeedsProcessing() {
				t.Errorf("%s high priority but type %s", r.URL, r.Type)
			}
			if r.InIframe {
				t.Errorf("%s high priority but inside iframe", r.URL)
			}
		} else {
			low++
		}
	}
	if high == 0 || low == 0 {
		t.Fatalf("degenerate priority split: high=%d low=%d", high, low)
	}
}

func TestShoppingCategoryMoreDynamic(t *testing.T) {
	// Shopping pages should show lower back-to-back URL stability than
	// Top-100 pages (§4.1.1: product sets change often).
	churn := func(cat Category) float64 {
		var changed, total int
		for i := 0; i < 6; i++ {
			s := NewSite("churn", cat, int64(5000+i))
			p := Profile{Device: PhoneSmall, UserID: 2}
			a := s.Snapshot(t0, p, 1)
			b := s.Snapshot(t0, p, 2).URLSet()
			for u := range a.URLSet() {
				total++
				if !b[u] {
					changed++
				}
			}
		}
		return float64(changed) / float64(total)
	}
	shop, top := churn(Shopping), churn(Top100)
	if shop <= top {
		t.Errorf("shopping churn %.3f not above top100 %.3f", shop, top)
	}
}

func TestShoppingInCorpus(t *testing.T) {
	c := Generate(CorpusConfig{Seed: 3, NumShopping: 4})
	if len(c.Sites) != 4 {
		t.Fatalf("%d sites", len(c.Sites))
	}
	for _, s := range c.Sites {
		if s.Category != Shopping {
			t.Fatalf("category %v", s.Category)
		}
		if s.Snapshot(t0, Profile{}, 1).Len() < 40 {
			t.Fatal("degenerate shopping site")
		}
	}
}
