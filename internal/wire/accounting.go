package wire

import (
	"sync"
	"time"

	"vroom/internal/hints"
	"vroom/internal/hintstore"
)

// Accountant reconciles what the serving path predicted against what
// clients actually did: every hint emitted opens a short-lived prediction
// window, and the window settles either when a request for that URL arrives
// (hint used) or when it expires (hint unused). Requests for subresources
// no table predicted settle immediately as recall misses. Settled outcomes
// fold into the hint store's per-tenant quality ledgers (and through them
// the vroom_hint_quality_* metric families), which is what vroom-audit and
// ROADMAP item 3's push policies read.
//
// Push semantics are asymmetric by construction: a pushed resource the
// client uses is claimed from its push cache and never re-crosses the wire,
// so the server cannot see successful pushes — only redundant ones (the
// client requested a URL that was also pushed: duplicate bytes, settled
// here as wasted). The authoritative pushed = used + wasted split is
// client-side (Report.PushQuality); the accountant contributes the
// server-observable half: pushed counts/bytes and provably-redundant push
// bytes. A prediction that was pushed and expires unrequested settles as
// used — the push pre-empted the request — leaving the client-side ledger
// to say whether those bytes were worth it.
//
// Windows are attributed to the hinted URL's own host (same-origin for the
// vast majority of hints); the staleness-age observation rides on the
// document origin whose table served the lookup.
//
// A nil *Accountant no-ops on every method without allocating — the
// disabled hot path is pinned at 0 allocs/op by the bench-alloc gate.
type Accountant struct {
	cfg   AccountingConfig
	clock func() time.Time

	mu      sync.Mutex
	origins map[string]*originLedger
	// drops counts predictions not tracked because a bound was hit; they
	// settle as nothing (emitted-only) so bounded memory never skews
	// precision, it only reduces sample size.
	drops int64
}

// AccountingConfig sizes the accountant.
type AccountingConfig struct {
	// Window is how long an emitted hint may wait for its request before it
	// settles unused. Default 5s — generous against a page load's tail, far
	// below tenant-eviction timescales.
	Window time.Duration
	// MaxOrigins bounds tracked origins (default 256); MaxOpenPerOrigin
	// bounds open windows per origin (default 512). Past either bound new
	// predictions are dropped, never blocking the serving path.
	MaxOrigins       int
	MaxOpenPerOrigin int
	// Store receives settled outcomes (required — a nil store makes
	// NewAccountant return nil, the disabled path).
	Store *hintstore.Store
	// Clock defaults to time.Now.
	Clock func() time.Time
}

func (c AccountingConfig) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return 5 * time.Second
}

func (c AccountingConfig) maxOrigins() int {
	if c.MaxOrigins > 0 {
		return c.MaxOrigins
	}
	return 256
}

func (c AccountingConfig) maxOpen() int {
	if c.MaxOpenPerOrigin > 0 {
		return c.MaxOpenPerOrigin
	}
	return 512
}

// originLedger is one host's open prediction windows.
type originLedger struct {
	open map[string]*prediction // keyed by full URL
}

// prediction is one emitted hint waiting for its request.
type prediction struct {
	attr    string // tenant credited at settlement (the hinted URL's host)
	emitted time.Time
	pushed  bool
	bytes   int64
}

// NewAccountant builds an accountant feeding cfg.Store. Returns nil (the
// no-op accountant) when the store is nil.
func NewAccountant(cfg AccountingConfig) *Accountant {
	if cfg.Store == nil {
		return nil
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Accountant{cfg: cfg, clock: clock, origins: make(map[string]*originLedger)}
}

// NoteHints opens a prediction window per emitted hint and records the
// serving table's staleness age against the document's origin. age is the
// hint table's staleness at lookup; ageValid is false on fallback paths
// with no table identity.
func (a *Accountant) NoteHints(docOrigin string, hs []hints.Hint, age time.Duration, ageValid bool) {
	if a == nil || len(hs) == 0 {
		return
	}
	now := a.clock()
	a.mu.Lock()
	for i := range hs {
		host := hs[i].URL.Host
		ol := a.ledgerLocked(host)
		if ol == nil {
			a.drops++
			continue
		}
		a.expireLocked(ol, now)
		key := hs[i].URL.String()
		if _, dup := ol.open[key]; dup {
			continue // re-emission refreshes nothing; first window stands
		}
		if len(ol.open) >= a.cfg.maxOpen() {
			a.drops++
			continue
		}
		ol.open[key] = &prediction{attr: host, emitted: now}
	}
	a.mu.Unlock()
	d := hintstore.QualityDelta{HintsEmitted: int64(len(hs))}
	if ageValid {
		d.StaleMs = float64(age.Milliseconds())
		d.StaleObs = 1
	}
	a.cfg.Store.NoteQuality(docOrigin, d)
}

// NotePush marks the URL's open window as pushed with its body size and
// accounts the pushed bytes. A push without a prior hint window (dedup
// races, hints shed after push decision) is accounted but not tracked.
func (a *Accountant) NotePush(host, url string, bytes int64) {
	if a == nil {
		return
	}
	attr := host
	a.mu.Lock()
	if ol := a.origins[host]; ol != nil {
		if p := ol.open[url]; p != nil {
			p.pushed = true
			p.bytes = bytes
			attr = p.attr
		}
	}
	a.mu.Unlock()
	a.cfg.Store.NoteQuality(attr, hintstore.QualityDelta{PushedCount: 1, PushedBytes: bytes})
}

// NoteRequest settles the URL's window as used (plus redundant-push waste
// if the resource was also pushed — the client fetched it anyway, so the
// pushed bytes were duplicate transfer). A request no window predicted
// settles as a recall miss unless it is a document: documents are inputs
// to hint tables, not predictions of them.
func (a *Accountant) NoteRequest(host, url string, isDoc bool) {
	if a == nil {
		return
	}
	now := a.clock()
	var settled *prediction
	a.mu.Lock()
	ol := a.origins[host]
	if ol != nil {
		a.expireLocked(ol, now)
		if p := ol.open[url]; p != nil {
			delete(ol.open, url)
			settled = p
		}
	}
	a.mu.Unlock()
	switch {
	case settled != nil:
		d := hintstore.QualityDelta{HintsUsed: 1}
		if settled.pushed {
			d.WastedPushBytes = settled.bytes
		}
		a.cfg.Store.NoteQuality(settled.attr, d)
	case !isDoc:
		a.cfg.Store.NoteQuality(host, hintstore.QualityDelta{HintsMissed: 1})
	}
}

// Flush settles every open window immediately (drain path): unpushed
// windows as unused, pushed ones as used (see the type comment). Returns
// how many windows were settled.
func (a *Accountant) Flush() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	type settle struct {
		attr   string
		pushed bool
	}
	var all []settle
	for _, ol := range a.origins {
		for _, p := range ol.open {
			all = append(all, settle{attr: p.attr, pushed: p.pushed})
		}
		ol.open = make(map[string]*prediction)
	}
	a.mu.Unlock()
	for _, s := range all {
		if s.pushed {
			a.cfg.Store.NoteQuality(s.attr, hintstore.QualityDelta{HintsUsed: 1})
		} else {
			a.cfg.Store.NoteQuality(s.attr, hintstore.QualityDelta{HintsUnused: 1})
		}
	}
	return len(all)
}

// Drops reports predictions dropped at a cardinality or window bound.
func (a *Accountant) Drops() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.drops
}

// ledgerLocked returns (creating) a host's ledger, or nil at the origin
// bound. Caller holds a.mu.
func (a *Accountant) ledgerLocked(host string) *originLedger {
	ol := a.origins[host]
	if ol != nil {
		return ol
	}
	if len(a.origins) >= a.cfg.maxOrigins() {
		return nil
	}
	ol = &originLedger{open: make(map[string]*prediction)}
	a.origins[host] = ol
	return ol
}

// expireLocked settles a ledger's windows older than the accounting
// window. Caller holds a.mu; calling the store under it is safe —
// NoteQuality only takes the store's own RLock.
func (a *Accountant) expireLocked(ol *originLedger, now time.Time) {
	cutoff := now.Add(-a.cfg.window())
	for key, p := range ol.open {
		if p.emitted.After(cutoff) {
			continue
		}
		delete(ol.open, key)
		if p.pushed {
			a.cfg.Store.NoteQuality(p.attr, hintstore.QualityDelta{HintsUsed: 1})
		} else {
			a.cfg.Store.NoteQuality(p.attr, hintstore.QualityDelta{HintsUnused: 1})
		}
	}
}
