package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"vroom/internal/hints"
	"vroom/internal/hintstore"
	"vroom/internal/netem"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// acctFixture is a store with one registered tenant plus an accountant on
// a fake clock, so settlement rules are testable without sleeping.
func acctFixture(t *testing.T, cfg AccountingConfig) (*hintstore.Store, *Accountant, string, *time.Time) {
	t.Helper()
	site := webpage.NewSite("acct", webpage.News, 2017)
	origin := site.RootURL().Host
	r := TrainResolver(site, recordTime, webpage.PhoneSmall)
	st := hintstore.New(hintstore.Config{TTL: time.Hour, MaxTenants: 4})
	t.Cleanup(func() { st.Drain(time.Second) })
	if err := st.Register(origin, webpage.PhoneSmall, hintstore.StaticTrainer(r)); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	cfg.Store = st
	cfg.Clock = func() time.Time { return now }
	return st, NewAccountant(cfg), origin, &now
}

func hintFor(host, path string) hints.Hint {
	return hints.Hint{URL: urlutil.URL{Scheme: "https", Host: host, Path: path}, Priority: hints.High}
}

// TestAccountantSettlement pins every settlement rule: request-in-window →
// used (plus redundant-push waste), window expiry → unused, unpredicted
// subresource → missed, documents exempt, Flush drains pushed windows as
// used and unpushed as unused.
func TestAccountantSettlement(t *testing.T) {
	st, acct, origin, now := acctFixture(t, AccountingConfig{Window: 5 * time.Second})
	a, b, cc, d := hintFor(origin, "/a.css"), hintFor(origin, "/b.js"), hintFor(origin, "/c.png"), hintFor(origin, "/d.css")

	acct.NoteHints(origin, []hints.Hint{a, b, cc}, 2*time.Second, true)
	acct.NotePush(origin, a.URL.String(), 500)
	// a was pushed AND requested: used, with the 500 pushed bytes wasted.
	acct.NoteRequest(origin, a.URL.String(), false)
	// b was hinted and requested: plain used.
	acct.NoteRequest(origin, b.URL.String(), false)
	// Never hinted: a recall miss.
	acct.NoteRequest(origin, "https://"+origin+"/never-hinted.js", false)
	// Documents are inputs to hint tables, not predictions — never a miss.
	acct.NoteRequest(origin, "https://"+origin+"/", true)

	// Advance past the window; the next touch on this origin expires c as
	// unused. The second emission carries no table identity (fallback).
	*now = now.Add(6 * time.Second)
	acct.NoteHints(origin, []hints.Hint{d}, 0, false)
	// d is still open; Flush settles it unused (it was never pushed).
	if n := acct.Flush(); n != 1 {
		t.Errorf("Flush settled %d windows, want 1", n)
	}

	q := st.QualityOf(origin)
	if q.HintsEmitted != 4 || q.HintsUsed != 2 || q.HintsUnused != 2 || q.HintsMissed != 1 {
		t.Fatalf("ledger: %+v", q)
	}
	if q.PushedCount != 1 || q.PushedBytes != 500 || q.WastedPushBytes != 500 {
		t.Errorf("push accounting: %+v", q)
	}
	if got := q.Precision(); got != 0.5 {
		t.Errorf("precision = %v, want 0.5", got)
	}
	if got := q.Recall(); got < 0.66 || got > 0.67 {
		t.Errorf("recall = %v, want 2/3", got)
	}
	if got := q.MeanStalenessMs(); got != 2000 {
		t.Errorf("mean staleness = %v, want 2000 (fallback emission must not observe)", got)
	}
	if acct.Drops() != 0 {
		t.Errorf("drops = %d, want 0", acct.Drops())
	}
}

// TestAccountantFlushPushedSettlesUsed pins the push asymmetry rule: a
// pushed prediction that expires unrequested settles used — the push
// pre-empted the request — and the client-side ledger owns whether the
// bytes were worth it.
func TestAccountantFlushPushedSettlesUsed(t *testing.T) {
	st, acct, origin, _ := acctFixture(t, AccountingConfig{})
	a := hintFor(origin, "/a.css")
	acct.NoteHints(origin, []hints.Hint{a}, 0, true)
	acct.NotePush(origin, a.URL.String(), 900)
	acct.Flush()
	q := st.QualityOf(origin)
	if q.HintsUsed != 1 || q.HintsUnused != 0 {
		t.Fatalf("pushed window settled wrong: %+v", q)
	}
	if q.WastedPushBytes != 0 {
		t.Errorf("unclaimed push charged as wasted server-side: %+v", q)
	}
}

// TestAccountantBounds proves tracked state cannot grow past its caps:
// past MaxOpenPerOrigin or MaxOrigins predictions drop (counted), and
// dropped predictions never skew precision — they just shrink the sample.
func TestAccountantBounds(t *testing.T) {
	st, acct, origin, _ := acctFixture(t, AccountingConfig{MaxOpenPerOrigin: 2, MaxOrigins: 1})
	hs := []hints.Hint{hintFor(origin, "/1"), hintFor(origin, "/2"), hintFor(origin, "/3")}
	acct.NoteHints(origin, hs, 0, true)
	if got := acct.Drops(); got != 1 {
		t.Fatalf("per-origin bound: drops = %d, want 1", got)
	}
	// A second origin is past MaxOrigins: all its windows drop.
	acct.NoteHints("elsewhere.example", []hints.Hint{hintFor("elsewhere.example", "/x")}, 0, true)
	if got := acct.Drops(); got != 2 {
		t.Fatalf("origin bound: drops = %d, want 2", got)
	}
	acct.Flush()
	// Emitted counts every hint served; settled outcomes only the tracked.
	q := st.QualityOf(origin)
	if q.HintsEmitted != 3 || q.HintsUsed+q.HintsUnused != 2 {
		t.Errorf("bounded ledger: %+v", q)
	}
}

// TestAccountingEndToEndConsistency drives a real push-enabled load with
// the store and accountant attached and cross-checks all three ledgers:
// the client's per-origin pushed = used + wasted split against its own
// per-fetch records, and the server's hint-quality ledger against what
// the wire actually carried.
func TestAccountingEndToEndConsistency(t *testing.T) {
	site := webpage.NewSite("acctwire", webpage.Top100, 4242)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)
	srv := NewServer(archive, resolver, webpage.PhoneSmall, ServerConfig{SendHints: true, Push: true})
	origin := site.RootURL().Host

	// Register every host in the archive so all settlements — which are
	// attributed to the hinted URL's own host, not the document's — land in
	// a resident ledger rather than the metrics-only path.
	st := hintstore.New(hintstore.Config{TTL: time.Hour, MaxTenants: 64})
	hosts := map[string]bool{}
	for _, rec := range archive.Records {
		if u, err := rec.ParsedURL(); err == nil && !hosts[u.Host] {
			hosts[u.Host] = true
			if err := st.Register(u.Host, webpage.PhoneSmall, hintstore.StaticTrainer(resolver)); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg := telemetry.NewRegistry()
	srv.Store = st
	srv.Acct = NewAccountant(AccountingConfig{Store: st, Window: 2 * time.Second})
	srv.Instrument(nil, reg)

	link := netem.Listen(netem.LinkConfig{
		Delay:               2 * time.Millisecond,
		DownlinkBytesPerSec: 20e6,
		UplinkBytesPerSec:   20e6,
	})
	go srv.H2().Serve(link)
	defer func() { srv.H2().Close(); link.Close() }()
	dial := func(string) (net.Conn, error) { return link.Dial() }
	c := &Client{Dial: dial, Staged: true, Metrics: reg}
	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatal(err)
	}
	srv.Drain(time.Second)

	// Client side: the authoritative pushed = used + wasted split, origin
	// by origin, and in total against the per-fetch records.
	if len(rep.PushQuality) == 0 {
		t.Fatal("push-enabled load produced no PushQuality entries")
	}
	totalPushed, totalUsed, totalWasted := 0, 0, 0
	for _, pq := range rep.PushQuality {
		if pq.Pushed != pq.Used+pq.Wasted {
			t.Errorf("%s: pushed %d != used %d + wasted %d", pq.Origin, pq.Pushed, pq.Used, pq.Wasted)
		}
		if pq.WastedBytes > pq.PushedBytes {
			t.Errorf("%s: wasted bytes %d > pushed bytes %d", pq.Origin, pq.WastedBytes, pq.PushedBytes)
		}
		totalPushed += pq.Pushed
		totalUsed += pq.Used
		totalWasted += pq.Wasted
	}
	pushedRecs := 0
	for _, f := range rep.Fetches {
		if f.Pushed {
			pushedRecs++
		}
	}
	if totalPushed != rep.Pushed || totalPushed != pushedRecs {
		t.Errorf("pushed totals disagree: ledger %d, report %d, fetch records %d",
			totalPushed, rep.Pushed, pushedRecs)
	}
	if totalUsed == 0 {
		t.Error("no push was ever claimed; staged load should use pushes")
	}

	// Server side: after Drain every window is settled, so the aggregate
	// ledger is internally consistent. Emissions are attributed to the
	// document's origin while settlements go to the hinted URL's host, so
	// the invariants hold over the sum of all tenants, not per tenant.
	var agg hintstore.QualitySnapshot
	for _, q := range st.QualityAll() {
		agg.HintsEmitted += q.HintsEmitted
		agg.HintsUsed += q.HintsUsed
		agg.HintsUnused += q.HintsUnused
		agg.HintsMissed += q.HintsMissed
		agg.PushedCount += q.PushedCount
		agg.PushedBytes += q.PushedBytes
		agg.WastedPushBytes += q.WastedPushBytes
	}
	if agg.HintsEmitted == 0 {
		t.Fatal("server emitted no accounted hints")
	}
	if agg.HintsUsed+agg.HintsUnused > agg.HintsEmitted {
		t.Errorf("settled %d+%d windows for %d emissions", agg.HintsUsed, agg.HintsUnused, agg.HintsEmitted)
	}
	if agg.HintsUsed == 0 {
		t.Error("no hint settled as used on a hinted load")
	}
	if p := agg.Precision(); p <= 0 || p > 1 {
		t.Errorf("precision = %v, want (0, 1]", p)
	}
	if r := agg.Recall(); r <= 0 || r > 1 {
		t.Errorf("recall = %v, want (0, 1]", r)
	}
	if agg.WastedPushBytes > agg.PushedBytes {
		t.Errorf("wasted push bytes %d > pushed bytes %d", agg.WastedPushBytes, agg.PushedBytes)
	}
	// Every push the server accounted arrived at the client, byte for
	// byte: the two ledgers must agree exactly on this in-memory world.
	var clientPushedBytes int64
	for _, pq := range rep.PushQuality {
		clientPushedBytes += pq.PushedBytes
	}
	if agg.PushedBytes == 0 || agg.PushedBytes != clientPushedBytes {
		t.Errorf("push byte ledgers disagree: server %d, client %d", agg.PushedBytes, clientPushedBytes)
	}
	if int(agg.PushedCount) != totalPushed {
		t.Errorf("push counts disagree: server %d, client %d", agg.PushedCount, totalPushed)
	}

	// The quality families made it to the exposition with origin labels.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		hintstore.MetricHintsEmitted + `{origin="` + origin + `"}`,
		"vroom_server_origin_requests_total{origin=",
	} {
		if !strings.Contains(sb.String(), fam) {
			t.Errorf("exposition missing %s", fam)
		}
	}
}

// TestAccountingDisabledZeroAlloc pins the disabled-path contract: a nil
// accountant (and nil per-origin vecs) must cost zero allocations on the
// serving path's hooks.
func TestAccountingDisabledZeroAlloc(t *testing.T) {
	var acct *Accountant
	var cv *telemetry.CounterVec
	hs := []hints.Hint{hintFor("origin.example", "/a.css")}
	allocs := testing.AllocsPerRun(1000, func() {
		acct.NoteHints("origin.example", hs, time.Second, true)
		acct.NotePush("origin.example", "https://origin.example/a.css", 100)
		acct.NoteRequest("origin.example", "https://origin.example/a.css", false)
		acct.Flush()
		cv.With("origin.example").Inc()
	})
	if allocs != 0 {
		t.Fatalf("disabled accounting path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkAccountingDisabled is the CI-greppable form of the same pin.
func BenchmarkAccountingDisabled(b *testing.B) {
	var acct *Accountant
	var cv *telemetry.CounterVec
	hs := []hints.Hint{hintFor("origin.example", "/a.css")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acct.NoteHints("origin.example", hs, time.Second, true)
		acct.NoteRequest("origin.example", "https://origin.example/a.css", false)
		cv.With("origin.example").Inc()
	}
}

// BenchmarkAccountingEnabled measures the live cost of one settled
// prediction cycle (hint emitted, then its request).
func BenchmarkAccountingEnabled(b *testing.B) {
	site := webpage.NewSite("acctbench", webpage.News, 2017)
	origin := site.RootURL().Host
	r := TrainResolver(site, recordTime, webpage.PhoneSmall)
	st := hintstore.New(hintstore.Config{TTL: time.Hour})
	defer st.Drain(time.Second)
	if err := st.Register(origin, webpage.PhoneSmall, hintstore.StaticTrainer(r)); err != nil {
		b.Fatal(err)
	}
	acct := NewAccountant(AccountingConfig{Store: st})
	hs := []hints.Hint{hintFor(origin, "/a.css")}
	url := hs[0].URL.String()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acct.NoteHints(origin, hs, time.Second, true)
		acct.NoteRequest(origin, url, false)
	}
}
