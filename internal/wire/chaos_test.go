package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"vroom/internal/faults"
	"vroom/internal/h1"
	"vroom/internal/netem"
	"vroom/internal/replay"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// chaosFaultConfig is severe-regime-grade fault pressure tuned for test wall
// clocks. Outage windows cover the whole load (OutageMaxStart zero, duration
// past any deadline) so whether a dial lands inside a window never depends on
// goroutine scheduling: the drawn decision log is a pure function of the seed.
func chaosFaultConfig() faults.Config {
	return faults.Config{
		OriginOutageFrac: 0.15,
		OutageMaxStart:   0,
		OutageDuration:   10 * time.Minute,
		BrownoutFrac:     0.25,
		BrownoutMaxDelay: 80 * time.Millisecond,
		ErrorRate:        0.08,
		TruncateRate:     0.08,
		StallRate:        0.05,
		StaleHintRate:    0.20,
		RedirectFrac:     0.5,
	}
}

const chaosDeadline = 30 * time.Second

// chaosLoad runs one full page load of a generated site with seeded faults
// injected both server-side (503s, stale hints) and on the wire (outages,
// brownouts, resets, stalls, truncation), returning the possibly-degraded
// report plus the shim's drawn fault decisions.
func chaosLoad(t *testing.T, proto string, seed int64, inject bool) (*Report, []string) {
	t.Helper()
	site := webpage.NewSite("chaoswire", webpage.News, 2017)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)
	srv := NewServer(archive, resolver, webpage.PhoneSmall, ServerConfig{SendHints: true, Push: proto == "h2"})

	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}

	var shim *netem.FaultShim
	if inject {
		plan := faults.New(seed, chaosFaultConfig())
		plan.ExemptURL(root)
		srv.Faults = plan
		shim = netem.NewFaultShim(plan)
	}

	link := netem.Listen(netem.LinkConfig{
		Delay:               time.Millisecond,
		DownlinkBytesPerSec: 50e6,
		UplinkBytesPerSec:   50e6,
	})
	var h1srv *h1.Server
	if proto == "h1" {
		h1srv = &h1.Server{Handler: srv}
		go h1srv.Serve(link)
	} else {
		go srv.H2().Serve(link)
	}
	defer func() {
		if h1srv != nil {
			h1srv.Close()
		} else {
			srv.H2().Close()
		}
		link.Close()
	}()

	c := &Client{
		Staged:        true,
		DialTimeout:   2 * time.Second,
		HeaderTimeout: 300 * time.Millisecond,
		StallTimeout:  300 * time.Millisecond,
		LoadDeadline:  chaosDeadline,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	}
	dial := func(origin string) (net.Conn, error) {
		if shim != nil {
			return shim.Dial(origin, link.Dial)
		}
		return link.Dial()
	}
	if proto == "h1" {
		c.DialOrigin = func(origin string) (OriginConn, error) {
			u, err := urlutil.Parse(origin + "/")
			if err != nil {
				return nil, err
			}
			return &h1.Pool{Authority: u.Host, Dial: func() (net.Conn, error) { return dial(origin) }}, nil
		}
	} else {
		c.Dial = dial
	}

	start := time.Now()
	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatalf("LoadPage must degrade, not fail outright: %v", err)
	}
	if el := time.Since(start); el > chaosDeadline+5*time.Second {
		t.Fatalf("load took %v, past the %v deadline", el, chaosDeadline)
	}
	return rep, shim.Decisions()
}

// checkChaosReport asserts the degraded-load invariants: every record is for
// a distinct URL, failed fetches carry a typed error kind plus message, and
// the aggregates match the records.
func checkChaosReport(t *testing.T, rep *Report) {
	t.Helper()
	seen := map[string]int{}
	failed, retries := 0, 0
	for _, f := range rep.Fetches {
		seen[f.URL]++
		retries += f.Retries
		if f.Failed() {
			failed++
			if f.Err == "" {
				t.Errorf("failed fetch of %s (kind %s) carries no error message", f.URL, f.ErrKind)
			}
		} else if f.Status == 0 {
			t.Errorf("successful fetch of %s has no status", f.URL)
		}
	}
	for u, n := range seen {
		if n > 1 {
			t.Errorf("%s recorded %d times", u, n)
		}
	}
	if failed != rep.Failed {
		t.Errorf("report says %d failed, records say %d", rep.Failed, failed)
	}
	if retries != rep.Retries {
		t.Errorf("report says %d retries, records say %d", rep.Retries, retries)
	}
}

// writeChaosArtifact dumps the per-fetch failure report as JSON when
// WIRE_CHAOS_ARTIFACTS names a directory (the CI wire-chaos job uploads it).
func writeChaosArtifact(t *testing.T, name string, rep *Report) {
	t.Helper()
	dir := os.Getenv("WIRE_CHAOS_ARTIFACTS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	type failure struct {
		URL      string `json:"url"`
		Kind     string `json:"kind"`
		Err      string `json:"err"`
		Retries  int    `json:"retries"`
		TimedOut bool   `json:"timed_out"`
	}
	out := struct {
		Fetches     int       `json:"fetches"`
		Failed      int       `json:"failed"`
		Retries     int       `json:"retries"`
		Pushed      int       `json:"pushed"`
		DeadlineHit bool      `json:"deadline_hit"`
		TotalMs     float64   `json:"total_ms"`
		Failures    []failure `json:"failures"`
	}{
		Fetches: len(rep.Fetches), Failed: rep.Failed, Retries: rep.Retries,
		Pushed: rep.Pushed, DeadlineHit: rep.DeadlineHit,
		TotalMs: rep.Total().Seconds() * 1000,
	}
	for _, f := range rep.Fetches {
		if f.Failed() {
			out.Failures = append(out.Failures, failure{
				URL: f.URL, Kind: string(f.ErrKind), Err: f.Err,
				Retries: f.Retries, TimedOut: f.TimedOut,
			})
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Logf("artifact marshal: %v", err)
		return
	}
	if err := os.WriteFile(filepath.Join(dir, name+".json"), b, 0o644); err != nil {
		t.Logf("artifact write: %v", err)
	}
}

// TestWireChaosDeterminism is the wire counterpart of the simulator's seeded
// chaos runs: two loads under the same seed must draw byte-identical wire
// fault decisions, and a different seed must draw different ones, while every
// load still returns a complete report within its deadline.
func TestWireChaosDeterminism(t *testing.T) {
	repA, decA := chaosLoad(t, "h2", 11, true)
	repB, decB := chaosLoad(t, "h2", 11, true)
	_, decC := chaosLoad(t, "h2", 1213, true)
	checkChaosReport(t, repA)
	checkChaosReport(t, repB)
	if len(decA) == 0 {
		t.Fatal("seed 11 drew no fault decisions at all")
	}
	if !reflect.DeepEqual(decA, decB) {
		t.Errorf("same seed drew different fault decisions:\nfirst:  %v\nsecond: %v", decA, decB)
	}
	if reflect.DeepEqual(decA, decC) {
		t.Errorf("different seeds drew identical fault decisions: %v", decA)
	}
	t.Logf("seed 11: %d fetches, %d failed, %d retries, %d fault decisions",
		len(repA.Fetches), repA.Failed, repA.Retries, len(decA))
	writeChaosArtifact(t, "chaos-determinism-h2-seed11", repA)
}

// TestWireChaosMatrix drives both wire protocols through the demo archive
// with faults off (clean world: nothing may fail) and on (broken world: the
// load must degrade, not abort).
func TestWireChaosMatrix(t *testing.T) {
	for _, proto := range []string{"h2", "h1"} {
		for _, inject := range []bool{false, true} {
			name := fmt.Sprintf("%s-faults-%v", proto, inject)
			t.Run(name, func(t *testing.T) {
				rep, dec := chaosLoad(t, proto, 7, inject)
				checkChaosReport(t, rep)
				if !inject {
					if len(dec) != 0 {
						t.Errorf("clean run drew fault decisions: %v", dec)
					}
					if rep.Failed != 0 {
						t.Errorf("clean run had %d failed fetches", rep.Failed)
					}
					if rep.DeadlineHit {
						t.Error("clean run hit the load deadline")
					}
				}
				if len(rep.Fetches) == 0 {
					t.Error("no fetches recorded")
				}
				writeChaosArtifact(t, "chaos-"+name, rep)
			})
		}
	}
}
