package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"vroom/internal/h2"
	"vroom/internal/hints"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// FetchRecord is one completed fetch in a wire page load.
type FetchRecord struct {
	URL      string
	Priority hints.Priority
	Pushed   bool
	Status   int
	Bytes    int
	Start    time.Time
	Done     time.Time
}

// Report summarizes a wire page load.
type Report struct {
	Root     string
	Started  time.Time
	Finished time.Time
	Fetches  []FetchRecord
	Pushed   int
	Bytes    int64
}

// Total returns the wall-clock load duration.
func (r *Report) Total() time.Duration { return r.Finished.Sub(r.Started) }

// OriginConn is one origin's transport: HTTP/2 (h2.ClientConn) or an
// HTTP/1.1 connection pool (h1.Pool) — anything that can exchange
// request/response pairs and report push promises.
type OriginConn interface {
	RoundTrip(*h2.Request) (*h2.Response, error)
	Promised(path string) (*h2.Request, bool)
	Close() error
}

// Client loads pages over real connections, one transport per origin,
// using either Vroom's staged scheduling or plain fetch-on-discovery.
type Client struct {
	// Dial opens a raw transport to an origin ("https://host"), carried
	// over HTTP/2. With netem, every origin dials the same emulated
	// listener.
	Dial func(origin string) (net.Conn, error)
	// DialOrigin, when set, takes precedence over Dial and may return any
	// OriginConn — e.g. an h1.Pool for HTTP/1.1 baselines.
	DialOrigin func(origin string) (OriginConn, error)
	// Staged enables Vroom's staged scheduler; false means baseline
	// fetch-ASAP.
	Staged bool

	mu          sync.Mutex
	conns       map[string]OriginConn
	seen        map[string]bool
	outstanding int
	stage       hints.Priority
	highOut     int
	semiOut     int
	rootDone    bool
	pendSemi    []fetchJob
	pendLow     []fetchJob
	pushedResp  map[string]*h2.Response
	pushWaiters map[string][]chan *h2.Response
	report      *Report
	doneCh      chan struct{}
	finished    bool
}

type fetchJob struct {
	u    urlutil.URL
	prio hints.Priority
}

// LoadPage fetches the page rooted at root to completion and reports
// per-resource timings. A Client instance performs one load.
func (c *Client) LoadPage(root urlutil.URL) (*Report, error) {
	if c.Dial == nil && c.DialOrigin == nil {
		return nil, fmt.Errorf("wire: Client.Dial not set")
	}
	c.conns = make(map[string]OriginConn)
	c.seen = make(map[string]bool)
	c.pushedResp = make(map[string]*h2.Response)
	c.pushWaiters = make(map[string][]chan *h2.Response)
	c.stage = hints.High
	c.report = &Report{Root: root.String(), Started: time.Now()}
	c.doneCh = make(chan struct{})

	c.mu.Lock()
	c.enqueue(root, hints.High)
	c.mu.Unlock()

	select {
	case <-c.doneCh:
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("wire: page load timed out")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.report.Finished = time.Now()
	// Pushes the page never referenced are wasted bandwidth; record them.
	for key, resp := range c.pushedResp {
		if c.seen[key] {
			continue
		}
		c.report.Fetches = append(c.report.Fetches, FetchRecord{
			URL: key, Priority: hints.Low, Pushed: true, Status: resp.Status,
			Bytes: len(resp.Body), Start: c.report.Finished, Done: c.report.Finished,
		})
		c.report.Bytes += int64(len(resp.Body))
		c.report.Pushed++
	}
	for _, cc := range c.conns {
		cc.Close()
	}
	return c.report, nil
}

// enqueue schedules a fetch according to the stage discipline. Caller holds
// c.mu.
func (c *Client) enqueue(u urlutil.URL, prio hints.Priority) {
	key := u.String()
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	if c.Staged && prio > c.stage {
		job := fetchJob{u: u, prio: prio}
		if prio == hints.Semi {
			c.pendSemi = append(c.pendSemi, job)
		} else {
			c.pendLow = append(c.pendLow, job)
		}
		return
	}
	c.issue(u, prio)
}

// issue starts a fetch goroutine. Caller holds c.mu.
func (c *Client) issue(u urlutil.URL, prio hints.Priority) {
	c.outstanding++
	switch prio {
	case hints.High:
		c.highOut++
	case hints.Semi:
		c.semiOut++
	}
	go c.fetch(u, prio)
}

func (c *Client) fetch(u urlutil.URL, prio hints.Priority) {
	start := time.Now()
	resp, err := c.doFetch(u)
	done := time.Now()

	var rec FetchRecord
	if err != nil {
		rec = FetchRecord{URL: u.String(), Priority: prio, Status: 0, Start: start, Done: done}
	} else {
		rec = FetchRecord{
			URL: u.String(), Priority: prio, Pushed: resp.Pushed,
			Status: resp.Status, Bytes: len(resp.Body), Start: start, Done: done,
		}
	}

	// Discover referenced resources and hints before re-locking.
	var discovered []fetchJob
	if err == nil && resp.Status == 200 {
		discovered = c.analyze(u, resp)
	}

	c.mu.Lock()
	c.report.Fetches = append(c.report.Fetches, rec)
	c.report.Bytes += int64(rec.Bytes)
	if rec.Pushed {
		c.report.Pushed++
	}
	if u.String() == c.report.Root {
		c.rootDone = true
	}
	for _, j := range discovered {
		c.enqueue(j.u, j.prio)
	}
	c.outstanding--
	switch prio {
	case hints.High:
		c.highOut--
	case hints.Semi:
		c.semiOut--
	}
	c.advance()
	c.maybeFinish()
	c.mu.Unlock()
}

// advance opens later stages as earlier ones drain. Caller holds c.mu.
func (c *Client) advance() {
	if !c.Staged {
		return
	}
	if c.stage == hints.High && c.rootDone && c.highOut == 0 {
		c.stage = hints.Semi
		for _, j := range c.pendSemi {
			c.issue(j.u, j.prio)
		}
		c.pendSemi = nil
	}
	if c.stage == hints.Semi && c.highOut == 0 && c.semiOut == 0 {
		c.stage = hints.Low
		for _, j := range c.pendLow {
			c.issue(j.u, j.prio)
		}
		c.pendLow = nil
	}
}

func (c *Client) maybeFinish() {
	if c.finished || c.outstanding > 0 || len(c.pendSemi) > 0 || len(c.pendLow) > 0 {
		return
	}
	c.finished = true
	close(c.doneCh)
}

// analyze extracts hints and body references from a response.
func (c *Client) analyze(u urlutil.URL, resp *h2.Response) []fetchJob {
	var jobs []fetchJob
	for _, h := range hints.Parse(resp.Header) {
		jobs = append(jobs, fetchJob{u: h.URL, prio: h.Priority})
	}
	typ := webpage.TypeFromURL(u)
	if typ.NeedsProcessing() {
		res := &webpage.Resource{URL: u, Type: typ, Body: string(resp.Body)}
		for _, d := range webpage.ExtractRefs(res) {
			prio := hints.Low
			switch webpage.TypeFromURL(d.URL) {
			case webpage.CSS:
				prio = hints.High
			case webpage.JS:
				if d.Async {
					prio = hints.Semi
				} else {
					prio = hints.High
				}
			}
			jobs = append(jobs, fetchJob{u: d.URL, prio: prio})
		}
	}
	return jobs
}

// doFetch resolves a URL through the push cache or a round trip on the
// origin's connection.
func (c *Client) doFetch(u urlutil.URL) (*h2.Response, error) {
	key := u.String()
	c.mu.Lock()
	if resp, ok := c.pushedResp[key]; ok {
		c.mu.Unlock()
		return resp, nil
	}
	cc, err := c.connLocked(u.Origin(), u.Host)
	if err != nil {
		c.mu.Unlock()
		return nil, err
	}
	// If the server promised a push for this path, wait for it instead of
	// double-fetching.
	if _, promised := cc.Promised(u.Path); promised {
		ch := make(chan *h2.Response, 1)
		c.pushWaiters[key] = append(c.pushWaiters[key], ch)
		c.mu.Unlock()
		select {
		case resp := <-ch:
			return resp, nil
		case <-time.After(30 * time.Second):
			return nil, fmt.Errorf("wire: promised push for %s never arrived", key)
		}
	}
	c.mu.Unlock()
	return cc.RoundTrip(&h2.Request{Method: "GET", Scheme: u.Scheme, Authority: u.Host, Path: u.Path})
}

// connLocked returns (dialing if needed) the origin's connection. Caller
// holds c.mu.
func (c *Client) connLocked(origin, host string) (OriginConn, error) {
	if cc, ok := c.conns[origin]; ok {
		return cc, nil
	}
	if c.DialOrigin != nil {
		oc, err := c.DialOrigin(origin)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", origin, err)
		}
		if cc, ok := oc.(*h2.ClientConn); ok {
			cc.OnPush = func(resp *h2.Response) { c.onPush(host, resp) }
		}
		c.conns[origin] = oc
		return oc, nil
	}
	nc, err := c.Dial(origin)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", origin, err)
	}
	cc, err := h2.NewClientConn(nc)
	if err != nil {
		return nil, err
	}
	cc.OnPush = func(resp *h2.Response) { c.onPush(host, resp) }
	c.conns[origin] = cc
	return cc, nil
}

// onPush stores pushed responses in the push cache and satisfies waiters.
// Pushed bodies are analyzed only when the page references them (through
// doFetch); pushes the page never needs are recorded as waste at load end.
func (c *Client) onPush(host string, resp *h2.Response) {
	if resp.Request == nil {
		return
	}
	u := urlutil.URL{Scheme: "https", Host: resp.Request.Authority, Path: resp.Request.Path}
	key := u.String()
	c.mu.Lock()
	c.pushedResp[key] = resp
	waiters := c.pushWaiters[key]
	delete(c.pushWaiters, key)
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- resp
	}
}
