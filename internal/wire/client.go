package wire

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vroom/internal/h2"
	"vroom/internal/hints"
	"vroom/internal/obs"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// ErrKind classifies why a fetch failed, so degraded loads report typed
// failures instead of opaque error strings.
type ErrKind string

// Fetch failure kinds.
const (
	FetchOK             ErrKind = ""
	FetchDial           ErrKind = "dial"            // origin unreachable
	FetchTimeoutHeaders ErrKind = "timeout-headers" // no response headers in time
	FetchTimeoutStall   ErrKind = "timeout-stall"   // transfer stalled mid-body
	FetchStream         ErrKind = "stream"          // stream-level reset
	FetchConn           ErrKind = "conn"            // connection-level failure
	FetchHTTP           ErrKind = "http"            // 5xx after retries
	FetchRedirect       ErrKind = "redirect"        // hop cap or bad location
	FetchBreaker        ErrKind = "breaker"         // origin circuit breaker open
	FetchDeadline       ErrKind = "deadline"        // overall load deadline hit
)

// FetchRecord is one fetch (completed or failed) in a wire page load.
type FetchRecord struct {
	URL      string
	Priority hints.Priority
	Pushed   bool
	Status   int
	Bytes    int
	Start    time.Time
	Done     time.Time

	// Failure fields: a degraded load reports every fetch it could not
	// complete with a typed kind, the retries it spent, and whether a
	// client-imposed deadline (not the server) ended it.
	Err       string
	ErrKind   ErrKind
	Retries   int
	TimedOut  bool
	Redirects int
	// FinalURL is the post-redirect URL the response was actually served
	// from (equal to URL when no redirect was followed; empty on failure).
	FinalURL string
	// Degraded carries the server's degradation tag for this response
	// (comma-separated mode tokens from the vroom-degraded header), empty
	// when the server served full service.
	Degraded string
}

// Failed reports whether this fetch ended in an error.
func (f *FetchRecord) Failed() bool { return f.ErrKind != FetchOK }

// PushQuality is one origin's push outcomes as the client saw them. This
// is the authoritative pushed = used + wasted split: a used push is
// claimed from the push cache and never re-crosses the wire, so only the
// client can tell a hit from pure waste (the server sees just the
// redundant subset — pushes the client fetched anyway).
type PushQuality struct {
	// Origin is the pushed resource's host.
	Origin string
	// Pushed counts push promises whose response arrived; always equal to
	// Used + Wasted once the load finishes.
	Pushed int
	// Used counts pushes a fetch claimed from the push cache.
	Used int
	// Wasted counts pushes the page never referenced.
	Wasted int
	// PushedBytes and WastedBytes are the corresponding body byte totals.
	PushedBytes int64
	WastedBytes int64
	// LeadMsSum sums, over used pushes, how long the pushed response sat in
	// the cache before a fetch needed it (milliseconds); LeadCount is the
	// number of observations. Lead time is the head start push bought.
	LeadMsSum float64
	LeadCount int
}

// MeanLeadMs returns the mean push lead time, 0 with no observations.
func (p *PushQuality) MeanLeadMs() float64 {
	if p.LeadCount == 0 {
		return 0
	}
	return p.LeadMsSum / float64(p.LeadCount)
}

// Report summarizes a wire page load.
type Report struct {
	Root     string
	Started  time.Time
	Finished time.Time
	Fetches  []FetchRecord
	Pushed   int
	Bytes    int64

	// Failed counts fetches that ended in an error; Retries totals retry
	// attempts across the load; DeadlineHit marks a load cut short by
	// LoadDeadline (the report is partial but complete per-URL).
	Failed      int
	Retries     int
	DeadlineHit bool
	// Degraded counts completed fetches the server tagged as degraded
	// (stale or shed hints, shed push).
	Degraded int
	// PushQuality breaks push outcomes down per origin, sorted by origin.
	// Empty when the server pushed nothing.
	PushQuality []PushQuality
}

// Total returns the wall-clock load duration.
func (r *Report) Total() time.Duration { return r.Finished.Sub(r.Started) }

// OriginConn is one origin's transport: HTTP/2 (h2.ClientConn) or an
// HTTP/1.1 connection pool (h1.Pool) — anything that can exchange
// request/response pairs and report push promises.
type OriginConn interface {
	RoundTrip(*h2.Request) (*h2.Response, error)
	Promised(path string) (*h2.Request, bool)
	Close() error
}

// timeoutRoundTripper is the optional deadline-aware transport interface;
// both h2.ClientConn and h1.Pool implement it.
type timeoutRoundTripper interface {
	RoundTripTimeout(*h2.Request, time.Duration, time.Duration) (*h2.Response, error)
}

// selfHealing marks transports that replace broken connections internally
// (h1.Pool); the client never evicts those.
type selfHealing interface{ SelfHealing() bool }

// RetryPolicy bounds replay of failed idempotent fetches with capped
// exponential backoff.
type RetryPolicy struct {
	// MaxAttempts caps tries per URL (first attempt included). Default 3.
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry, doubling each retry
	// up to MaxBackoff. Defaults 250ms and 4s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = 4 * time.Second
	}
	d := base << (attempt - 1)
	if d <= 0 || d > max {
		d = max
	}
	return d
}

// Client loads pages over real connections, one transport per origin,
// using either Vroom's staged scheduling or plain fetch-on-discovery.
//
// The load path is built to survive broken worlds: per-attempt dial,
// header, and body-stall timeouts; budgeted retries for idempotent GETs;
// eviction of broken connections with one re-dial per origin; a per-origin
// circuit breaker; and an overall load deadline after which LoadPage
// returns a partial — but per-URL complete — Report rather than an error.
type Client struct {
	// Dial opens a raw transport to an origin ("https://host"), carried
	// over HTTP/2. With netem, every origin dials the same emulated
	// listener.
	Dial func(origin string) (net.Conn, error)
	// DialOrigin, when set, takes precedence over Dial and may return any
	// OriginConn — e.g. an h1.Pool for HTTP/1.1 baselines.
	DialOrigin func(origin string) (OriginConn, error)
	// Staged enables Vroom's staged scheduler; false means baseline
	// fetch-ASAP.
	Staged bool

	// DialTimeout bounds one dial attempt (default 10s). HeaderTimeout
	// bounds time-to-response-headers and StallTimeout bounds any gap in
	// body progress (defaults 5s each; h1 uses their sum as one exchange
	// watchdog). LoadDeadline bounds the whole page load (default 2m).
	DialTimeout   time.Duration
	HeaderTimeout time.Duration
	StallTimeout  time.Duration
	LoadDeadline  time.Duration

	// Retry governs per-URL replay; RetryBudget caps total retries across
	// the load (default 16) so a broken world cannot multiply traffic.
	Retry       RetryPolicy
	RetryBudget int
	// BreakerThreshold trips an origin's circuit breaker after that many
	// consecutive failures: further fetches fail fast instead of burning
	// timeouts. Default 4; negative disables.
	BreakerThreshold int
	// RedirectHops caps how many 3xx hops one fetch follows. Default 5.
	RedirectHops int

	// Trace, when non-nil, records the load lifecycle on the wall clock:
	// per-fetch spans with outcome args, dial spans, backoff waits, retry
	// and redirect instants, breaker trips, push deliveries. Use
	// obs.NewWall — fetches emit concurrently. Nil costs nothing.
	Trace *obs.Tracer
	// Propagate, with Trace set, mints a per-load trace ID and sends a
	// per-fetch trace context to the server in the obs.TraceHeader request
	// header; the fetch span carries the same context as obs.ArgFlow, so a
	// server recording scraped from /trace can be merged into this load's
	// and stitched by flow events. No-op without Trace (there are no spans
	// to join); the disabled path stays allocation-free.
	Propagate bool
	// Metrics, when non-nil, feeds the live metrics plane: per-origin
	// request/retry/failure/redirect counters, fetch-phase latency
	// histograms, push utilization, breaker and connection gauges. Nil
	// costs nothing.
	Metrics *telemetry.Registry

	mu          sync.Mutex
	origins     map[string]*originState
	seen        map[string]bool
	inflight    map[string]*inflightFetch
	retriesUsed int
	outstanding int
	stage       hints.Priority
	highOut     int
	semiOut     int
	rootDone    bool
	pendSemi    []fetchJob
	pendLow     []fetchJob
	pushedResp  map[string]*h2.Response
	pushWaiters map[string][]chan *h2.Response
	// Push-quality ledger: when each pushed response arrived (for lead
	// times), which URLs were already claimed (so a re-claim can't break
	// the pushed = used + wasted invariant), and the per-origin rollup.
	pushArrival map[string]time.Time
	pushClaimed map[string]bool
	pushQual    map[string]*PushQuality
	report      *Report
	doneCh      chan struct{}
	cancel      chan struct{}
	finished    bool
	lt          loadTelemetry

	// vecs bounds the per-origin metric families; built once on first use
	// (zero value no-ops when Metrics is nil).
	vecsOnce sync.Once
	vecs     clientVecs

	// traceID is the per-load trace identity (zero unless Propagate);
	// fetchSeq numbers the fetch contexts minted under it.
	traceID  uint64
	fetchSeq atomic.Uint64
}

// originState is one origin's connection lifecycle: the live conn, the
// in-flight dial (singleflight), the redial budget, and the breaker count.
type originState struct {
	conn    OriginConn
	dialing chan struct{}
	// everConnected gates the redial budget: initial dial attempts are
	// bounded by the breaker, re-dials after eviction by redials.
	everConnected bool
	redials       int
	// fails counts consecutive failures; breakerThreshold trips on it.
	fails int

	// Telemetry handles, resolved once per origin (nil when metrics are
	// off; nil handles no-op).
	mReqs    *telemetry.Counter
	mBreaker *telemetry.Gauge
	mConns   *telemetry.Gauge
}

type inflightFetch struct {
	prio    hints.Priority
	start   time.Time
	retries int
	// flow is the propagated trace context for this fetch — the
	// obs.TraceHeader value sent on every attempt and the obs.ArgFlow value
	// on the fetch span. Empty when propagation is off. Written once by the
	// fetch goroutine before any attempt; never read by other goroutines.
	flow string
}

type fetchJob struct {
	u    urlutil.URL
	prio hints.Priority
}

// fetchOutcome carries a fetch's failure typing back to the recorder.
type fetchOutcome struct {
	err       error
	kind      ErrKind
	status    int
	timedOut  bool
	redirects int
	finalURL  urlutil.URL
	// degraded is the union of vroom-degraded tokens seen on every
	// response of this fetch — retried 5xx attempts and redirect hops
	// included — not just the final one.
	degraded string
}

// errLoadOver aborts work that outlived the load (deadline or completion).
var errLoadOver = errors.New("wire: load finished")

// errRedialBudget fails an origin whose evicted conn was already re-dialed.
var errRedialBudget = errors.New("wire: origin redial budget exhausted")

// breakerOpenError fails fast on an origin with too many consecutive
// failures.
type breakerOpenError struct{ origin string }

func (e breakerOpenError) Error() string {
	return "wire: circuit breaker open for " + e.origin
}

// dialError wraps any failure to produce a usable origin connection.
type dialError struct {
	origin string
	err    error
}

func (e *dialError) Error() string { return fmt.Sprintf("wire: dial %s: %v", e.origin, e.err) }
func (e *dialError) Unwrap() error { return e.err }

// Defaulted knob accessors.
func (c *Client) dialTimeout() time.Duration {
	if c.DialTimeout > 0 {
		return c.DialTimeout
	}
	return 10 * time.Second
}
func (c *Client) headerTimeout() time.Duration {
	if c.HeaderTimeout > 0 {
		return c.HeaderTimeout
	}
	return 5 * time.Second
}
func (c *Client) stallTimeout() time.Duration {
	if c.StallTimeout > 0 {
		return c.StallTimeout
	}
	return 5 * time.Second
}
func (c *Client) loadDeadline() time.Duration {
	if c.LoadDeadline > 0 {
		return c.LoadDeadline
	}
	return 2 * time.Minute
}
func (c *Client) maxAttempts() int {
	if c.Retry.MaxAttempts > 0 {
		return c.Retry.MaxAttempts
	}
	return 3
}
func (c *Client) retryBudget() int {
	if c.RetryBudget > 0 {
		return c.RetryBudget
	}
	return 16
}
func (c *Client) breakerThreshold() int {
	if c.BreakerThreshold != 0 {
		return c.BreakerThreshold
	}
	return 4
}
func (c *Client) redirectHops() int {
	if c.RedirectHops > 0 {
		return c.RedirectHops
	}
	return 5
}

// LoadPage fetches the page rooted at root and reports per-resource
// timings. A Client instance performs one load. Degraded worlds never
// produce an opaque error: failed fetches carry typed ErrKind/Retries
// fields, and if LoadDeadline passes, the partial Report (DeadlineHit set,
// every started or queued URL accounted for) is returned with a nil error.
// The only error is misconfiguration (no dialer).
func (c *Client) LoadPage(root urlutil.URL) (*Report, error) {
	if c.Dial == nil && c.DialOrigin == nil {
		return nil, fmt.Errorf("wire: Client.Dial not set")
	}
	c.origins = make(map[string]*originState)
	c.seen = make(map[string]bool)
	c.inflight = make(map[string]*inflightFetch)
	c.pushedResp = make(map[string]*h2.Response)
	c.pushWaiters = make(map[string][]chan *h2.Response)
	c.pushArrival = make(map[string]time.Time)
	c.pushClaimed = make(map[string]bool)
	c.pushQual = make(map[string]*PushQuality)
	c.stage = hints.High
	c.report = &Report{Root: root.String(), Started: time.Now()}
	c.doneCh = make(chan struct{})
	c.cancel = make(chan struct{})
	c.lt = newLoadTelemetry(c.Metrics)
	c.lt.loads.Inc()
	var loadSpan obs.Span
	if c.Trace.Enabled() {
		if c.Propagate {
			c.traceID = obs.NewTraceID()
			loadSpan = c.Trace.Begin(obs.TrackLoad, "load",
				obs.Arg{Key: "root", Val: root.String()},
				obs.Arg{Key: obs.ArgTrace, Val: obs.TraceContext{Trace: c.traceID}.TraceID()})
		} else {
			loadSpan = c.Trace.Begin(obs.TrackLoad, "load", obs.Arg{Key: "root", Val: root.String()})
		}
	}

	c.mu.Lock()
	c.enqueue(root, hints.High)
	c.mu.Unlock()

	timer := time.NewTimer(c.loadDeadline())
	defer timer.Stop()
	var deadlineHit bool
	select {
	case <-c.doneCh:
	case <-timer.C:
		deadlineHit = true
	}

	c.mu.Lock()
	if deadlineHit && !c.finished {
		c.finished = true
		c.report.DeadlineHit = true
		c.lt.deadlines.Inc()
		c.Trace.Instant(obs.TrackLoad, "load-deadline")
		now := time.Now()
		for key, fl := range c.inflight {
			c.report.Fetches = append(c.report.Fetches, FetchRecord{
				URL: key, Priority: fl.prio, Start: fl.start, Done: now,
				Err: "wire: load deadline exceeded", ErrKind: FetchDeadline,
				Retries: fl.retries, TimedOut: true,
			})
			c.report.Failed++
			c.report.Retries += fl.retries
		}
		c.inflight = make(map[string]*inflightFetch)
		for _, j := range append(append([]fetchJob{}, c.pendSemi...), c.pendLow...) {
			c.report.Fetches = append(c.report.Fetches, FetchRecord{
				URL: j.u.String(), Priority: j.prio, Start: now, Done: now,
				Err:     "wire: load deadline exceeded before fetch started",
				ErrKind: FetchDeadline, TimedOut: true,
			})
			c.report.Failed++
		}
		c.pendSemi, c.pendLow = nil, nil
	}
	c.report.Finished = time.Now()
	// Pushes the page never referenced are wasted bandwidth; record them.
	for key, resp := range c.pushedResp {
		if c.seen[key] {
			continue
		}
		c.report.Fetches = append(c.report.Fetches, FetchRecord{
			URL: key, Priority: hints.Low, Pushed: true, Status: resp.Status,
			Bytes: len(resp.Body), Start: c.report.Finished, Done: c.report.Finished,
		})
		c.report.Bytes += int64(len(resp.Body))
		c.report.Pushed++
		c.lt.pushUnclaimed.Inc()
	}
	// Settle the push ledger: every pushed URL no fetch claimed is waste
	// (the page may have "seen" it without ever reaching the cache — e.g. a
	// fetch the deadline killed — so waste keys off claims, not seen).
	for key, resp := range c.pushedResp {
		if c.pushClaimed[key] {
			continue
		}
		pq := c.pushQualLocked(resp.Request.Authority)
		pq.Wasted++
		pq.WastedBytes += int64(len(resp.Body))
	}
	for _, pq := range c.pushQual {
		c.report.PushQuality = append(c.report.PushQuality, *pq)
	}
	sort.Slice(c.report.PushQuality, func(i, j int) bool {
		return c.report.PushQuality[i].Origin < c.report.PushQuality[j].Origin
	})
	conns := make([]OriginConn, 0, len(c.origins))
	for _, os := range c.origins {
		if os.conn != nil {
			conns = append(conns, os.conn)
			os.conn = nil
		}
		os.mConns.Set(0)
	}
	report := c.report
	c.mu.Unlock()

	// Unblock backoff sleeps, push waits, and dial waits, then cut every
	// connection so no fetch goroutine can park on a dead read.
	close(c.cancel)
	for _, cc := range conns {
		cc.Close()
	}
	if loadSpan.Active() {
		loadSpan.End(obs.Arg{Key: "fetches", Val: strconv.Itoa(len(report.Fetches))},
			obs.Arg{Key: "failed", Val: strconv.Itoa(report.Failed)})
	}
	return report, nil
}

// enqueue schedules a fetch according to the stage discipline. Caller holds
// c.mu.
func (c *Client) enqueue(u urlutil.URL, prio hints.Priority) {
	key := u.String()
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	if c.Staged && prio > c.stage {
		job := fetchJob{u: u, prio: prio}
		if prio == hints.Semi {
			c.pendSemi = append(c.pendSemi, job)
		} else {
			c.pendLow = append(c.pendLow, job)
		}
		return
	}
	c.issue(u, prio)
}

// issue starts a fetch goroutine. Caller holds c.mu.
func (c *Client) issue(u urlutil.URL, prio hints.Priority) {
	c.outstanding++
	switch prio {
	case hints.High:
		c.highOut++
	case hints.Semi:
		c.semiOut++
	}
	// Register before the goroutine exists so a load deadline always finds
	// (and records) every issued fetch.
	c.inflight[u.String()] = &inflightFetch{prio: prio, start: time.Now()}
	go c.fetch(u, prio)
}

func (c *Client) fetch(u urlutil.URL, prio hints.Priority) {
	key := u.String()
	c.mu.Lock()
	fl := c.inflight[key]
	c.mu.Unlock()
	if fl == nil {
		return // load already over; the deadline path wrote this record
	}

	sp := c.beginFetchSpan(fl, key, prio.String())
	resp, out := c.doFetch(u, fl)
	done := time.Now()

	rec := FetchRecord{
		URL: key, Priority: prio, Start: fl.start, Done: done,
		Redirects: out.redirects,
		// Degradation tags are unioned across every attempt and redirect
		// hop, so a fetch that saw degraded service and then failed (or was
		// retried into success) still reports it — keeping client-side
		// degradation counts in step with the server's shed counters.
		Degraded: out.degraded,
	}
	if out.err != nil {
		rec.Err = out.err.Error()
		rec.ErrKind = out.kind
		rec.Status = out.status
		rec.TimedOut = out.timedOut
	} else {
		rec.Pushed = resp.Pushed
		rec.Status = resp.Status
		rec.Bytes = len(resp.Body)
		rec.FinalURL = out.finalURL.String()
	}
	c.endFetchSpan(sp, &rec)
	if c.Metrics != nil {
		ms := float64(done.Sub(fl.start)) / float64(time.Millisecond)
		if rec.Failed() {
			c.lt.fetchErrMs.ObserveExemplar(ms, fl.flow)
			c.cv().fails.WithLabels(u.Origin(), telemetry.L("kind", string(rec.ErrKind))).Inc()
		} else {
			c.lt.fetchOkMs.ObserveExemplar(ms, fl.flow)
		}
		if rec.Redirects > 0 {
			c.cv().redirects.With(u.Origin()).Add(int64(rec.Redirects))
		}
	}

	// Discover referenced resources and hints before re-locking; relative
	// references resolve against the post-redirect URL.
	var discovered []fetchJob
	if out.err == nil && resp.Status == 200 {
		discovered = c.analyze(out.finalURL, resp)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	rec.Retries = fl.retries
	delete(c.inflight, key)
	if c.finished {
		return // the partial report was already handed to the caller
	}
	c.report.Fetches = append(c.report.Fetches, rec)
	c.report.Bytes += int64(rec.Bytes)
	c.report.Retries += rec.Retries
	if rec.Failed() {
		c.report.Failed++
	}
	if rec.Pushed {
		c.report.Pushed++
	}
	if rec.Degraded != "" {
		c.report.Degraded++
	}
	if key == c.report.Root {
		c.rootDone = true
	}
	for _, j := range discovered {
		c.enqueue(j.u, j.prio)
	}
	c.outstanding--
	switch prio {
	case hints.High:
		c.highOut--
	case hints.Semi:
		c.semiOut--
	}
	c.advance()
	c.maybeFinish()
}

// advance opens later stages as earlier ones drain. Caller holds c.mu.
func (c *Client) advance() {
	if !c.Staged {
		return
	}
	if c.stage == hints.High && c.rootDone && c.highOut == 0 {
		c.stage = hints.Semi
		for _, j := range c.pendSemi {
			c.issue(j.u, j.prio)
		}
		c.pendSemi = nil
	}
	if c.stage == hints.Semi && c.highOut == 0 && c.semiOut == 0 {
		c.stage = hints.Low
		for _, j := range c.pendLow {
			c.issue(j.u, j.prio)
		}
		c.pendLow = nil
	}
}

func (c *Client) maybeFinish() {
	if c.finished || c.outstanding > 0 || len(c.pendSemi) > 0 || len(c.pendLow) > 0 {
		return
	}
	c.finished = true
	close(c.doneCh)
}

// analyze extracts hints and body references from a response.
func (c *Client) analyze(u urlutil.URL, resp *h2.Response) []fetchJob {
	var jobs []fetchJob
	for _, h := range hints.Parse(resp.Header) {
		jobs = append(jobs, fetchJob{u: h.URL, prio: h.Priority})
	}
	typ := webpage.TypeFromURL(u)
	if typ.NeedsProcessing() {
		res := &webpage.Resource{URL: u, Type: typ, Body: string(resp.Body)}
		for _, d := range webpage.ExtractRefs(res) {
			prio := hints.Low
			switch webpage.TypeFromURL(d.URL) {
			case webpage.CSS:
				prio = hints.High
			case webpage.JS:
				if d.Async {
					prio = hints.Semi
				} else {
					prio = hints.High
				}
			}
			jobs = append(jobs, fetchJob{u: d.URL, prio: prio})
		}
	}
	return jobs
}

// doFetch fetches one URL, following redirects up to the hop cap.
func (c *Client) doFetch(u urlutil.URL, fl *inflightFetch) (*h2.Response, fetchOutcome) {
	cur := u
	hops := 0
	degraded := ""
	for {
		resp, out := c.fetchOne(cur, fl)
		out.redirects = hops
		degraded = mergeDegraded(degraded, out.degraded)
		out.degraded = degraded
		if out.err != nil {
			return nil, out
		}
		loc := redirectLocation(resp)
		if loc == "" {
			out.finalURL = cur
			return resp, out
		}
		if hops >= c.redirectHops() {
			return nil, fetchOutcome{
				err:    fmt.Errorf("wire: %s: more than %d redirect hops", u, c.redirectHops()),
				kind:   FetchRedirect,
				status: resp.Status, redirects: hops, degraded: degraded,
			}
		}
		next, ok := urlutil.Resolve(cur, loc)
		if !ok {
			return nil, fetchOutcome{
				err:    fmt.Errorf("wire: %s: unresolvable location %q", cur, loc),
				kind:   FetchRedirect,
				status: resp.Status, redirects: hops, degraded: degraded,
			}
		}
		hops++
		c.mu.Lock()
		already := c.seen[next.String()]
		c.seen[next.String()] = true
		c.mu.Unlock()
		if already {
			// Another fetch owns (or owned) the target; this record just
			// reports the hop.
			out.finalURL = cur
			return resp, out
		}
		cur = next
	}
}

// mergeDegraded unions two comma-separated degradation-token lists,
// preserving first-seen order.
func mergeDegraded(a, b string) string {
	if b == "" {
		return a
	}
	if a == "" {
		return b
	}
	out := a
	for _, tok := range strings.Split(b, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" || hasToken(out, tok) {
			continue
		}
		out += ", " + tok
	}
	return out
}

// hasToken reports whether a comma-separated token list contains tok.
func hasToken(list, tok string) bool {
	for _, t := range strings.Split(list, ",") {
		if strings.TrimSpace(t) == tok {
			return true
		}
	}
	return false
}

func redirectLocation(resp *h2.Response) string {
	switch resp.Status {
	case 301, 302, 303, 307, 308:
	default:
		return ""
	}
	if vals := resp.Header["location"]; len(vals) > 0 {
		return vals[0]
	}
	return ""
}

// fetchOne fetches one URL with budgeted, backed-off retries. Degradation
// tags accumulate across attempts: a 503 shed that is later retried into a
// 200 still reports shed-request.
func (c *Client) fetchOne(u urlutil.URL, fl *inflightFetch) (*h2.Response, fetchOutcome) {
	var last fetchOutcome
	degraded := ""
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !c.takeRetryToken(fl) {
				last.err = fmt.Errorf("%v (retry budget exhausted)", last.err)
				return nil, last
			}
			if c.Metrics != nil {
				c.cv().retries.With(u.Origin()).Inc()
			}
			var bs obs.Span
			if c.Trace.Enabled() {
				bs = c.Trace.Begin(obs.TrackLoad, "backoff",
					obs.Arg{Key: "url", Val: u.String()},
					obs.Arg{Key: "attempt", Val: strconv.Itoa(attempt)})
			}
			ok := c.sleepBackoff(c.Retry.backoff(attempt))
			bs.End()
			if !ok {
				return nil, fetchOutcome{err: errLoadOver, kind: FetchDeadline, degraded: degraded}
			}
		}
		resp, err := c.attempt(u, fl)
		if err == nil {
			if vals := resp.Header[HeaderDegraded]; len(vals) > 0 {
				degraded = mergeDegraded(degraded, vals[0])
			}
		}
		if err == nil && resp.Status < 500 {
			return resp, fetchOutcome{degraded: degraded}
		}
		if err == nil {
			// 5xx: transient server verdicts redraw per attempt — replay.
			last = fetchOutcome{
				err:    fmt.Errorf("wire: %s answered %d", u.String(), resp.Status),
				kind:   FetchHTTP,
				status: resp.Status, degraded: degraded,
			}
		} else {
			kind, timedOut := classifyErr(err)
			last = fetchOutcome{err: err, kind: kind, timedOut: timedOut, degraded: degraded}
			if !retryableErr(err) {
				return nil, last
			}
		}
		if attempt+1 >= c.maxAttempts() {
			return nil, last
		}
	}
}

// takeRetryToken charges one retry against the per-load budget.
func (c *Client) takeRetryToken(fl *inflightFetch) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.finished || c.retriesUsed >= c.retryBudget() {
		return false
	}
	c.retriesUsed++
	fl.retries++
	return true
}

// sleepBackoff sleeps d unless the load ends first.
func (c *Client) sleepBackoff(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.cancel:
		return false
	}
}

// attempt performs one try at a URL: push cache, breaker, promised-push
// wait, then a deadline-bound round trip.
func (c *Client) attempt(u urlutil.URL, fl *inflightFetch) (*h2.Response, error) {
	key := u.String()
	origin := u.Origin()
	c.mu.Lock()
	if resp, ok := c.pushedResp[key]; ok {
		c.notePushClaimLocked(u.Host, key)
		c.mu.Unlock()
		c.lt.pushClaimed.Inc()
		return resp, nil
	}
	os := c.originState(origin)
	if th := c.breakerThreshold(); th > 0 && os.fails >= th {
		c.mu.Unlock()
		return nil, breakerOpenError{origin: origin}
	}
	c.mu.Unlock()

	cc, err := c.conn(origin, u.Host)
	if err != nil {
		return nil, err
	}

	// If the server promised a push for this path, wait for it instead of
	// double-fetching — but only as long as a round trip would be allowed
	// to take: a promise orphaned by a dying conn must not park the fetch.
	if _, promised := cc.Promised(u.Path); promised {
		ch := make(chan *h2.Response, 1)
		c.mu.Lock()
		c.pushWaiters[key] = append(c.pushWaiters[key], ch)
		c.mu.Unlock()
		wait := time.NewTimer(c.headerTimeout() + c.stallTimeout())
		select {
		case resp := <-ch:
			wait.Stop()
			c.mu.Lock()
			c.notePushClaimLocked(u.Host, key)
			c.mu.Unlock()
			c.lt.pushClaimed.Inc()
			return resp, nil
		case <-wait.C:
			c.dropPushWaiter(key, ch)
			// Stale promise: fall through to a real round trip.
		case <-c.cancel:
			wait.Stop()
			c.dropPushWaiter(key, ch)
			return nil, errLoadOver
		}
	}

	// Propagate the per-attempt budget: the server's admission queue and
	// push decisions see how long this client will actually wait for
	// headers, so it never holds or feeds a request its client has
	// abandoned.
	deadlineMS := strconv.FormatInt(int64(c.headerTimeout()/time.Millisecond), 10)
	hdr := map[string][]string{HeaderDeadline: {deadlineMS}}
	if fl.flow != "" {
		// Propagate this fetch's trace context so the server's admission,
		// hint-lookup, and push spans carry the same flow ID as our fetch
		// span.
		hdr[obs.TraceHeader] = []string{fl.flow}
	}
	req := &h2.Request{Method: "GET", Scheme: u.Scheme, Authority: u.Host, Path: u.Path,
		Header: hdr}
	os.mReqs.Inc()
	resp, err := c.roundTrip(cc, req)
	if err != nil {
		c.noteConnFailure(origin, cc, err)
		return nil, err
	}
	c.noteSuccess(origin)
	return resp, nil
}

// roundTrip uses the transport's deadline-aware entry point when it has
// one.
func (c *Client) roundTrip(cc OriginConn, req *h2.Request) (*h2.Response, error) {
	if tr, ok := cc.(timeoutRoundTripper); ok {
		return tr.RoundTripTimeout(req, c.headerTimeout(), c.stallTimeout())
	}
	return cc.RoundTrip(req)
}

func (c *Client) dropPushWaiter(key string, ch chan *h2.Response) {
	c.mu.Lock()
	ws := c.pushWaiters[key]
	for i, w := range ws {
		if w == ch {
			c.pushWaiters[key] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// cv returns the client's bounded per-origin metric families, building
// them on first use. Safe (and free) when Metrics is nil.
func (c *Client) cv() *clientVecs {
	c.vecsOnce.Do(func() { c.vecs = newClientVecs(c.Metrics) })
	return &c.vecs
}

// pushQualLocked returns (creating) one origin's push ledger. Caller
// holds c.mu.
func (c *Client) pushQualLocked(host string) *PushQuality {
	pq := c.pushQual[host]
	if pq == nil {
		pq = &PushQuality{Origin: host}
		c.pushQual[host] = pq
	}
	return pq
}

// notePushClaimLocked credits a push-cache hit to the origin's push
// ledger: the push was used, and its lead time is how long the response
// sat in the cache before this fetch needed it. Idempotent per URL so a
// re-claim cannot break pushed = used + wasted. Caller holds c.mu.
func (c *Client) notePushClaimLocked(host, key string) {
	if c.pushClaimed[key] {
		return
	}
	c.pushClaimed[key] = true
	pq := c.pushQualLocked(host)
	pq.Used++
	if at, ok := c.pushArrival[key]; ok {
		ms := float64(time.Since(at)) / float64(time.Millisecond)
		pq.LeadMsSum += ms
		pq.LeadCount++
		c.lt.pushLeadMs.Observe(ms)
	}
}

// originState returns (creating if needed) an origin's lifecycle state.
// Caller holds c.mu.
func (c *Client) originState(origin string) *originState {
	os, ok := c.origins[origin]
	if !ok {
		os = &originState{}
		if c.Metrics != nil {
			cv := c.cv()
			os.mReqs = cv.reqs.With(origin)
			os.mBreaker = cv.breakOpen.With(origin)
			os.mConns = cv.conns.WithLabels(origin, telemetry.L("proto", "h2"))
		}
		c.origins[origin] = os
	}
	return os
}

// conn returns the origin's connection, dialing at most once concurrently
// (other fetches wait on the in-flight dial rather than racing their own).
func (c *Client) conn(origin, host string) (OriginConn, error) {
	for {
		c.mu.Lock()
		os := c.originState(origin)
		if os.conn != nil {
			cc := os.conn
			c.mu.Unlock()
			return cc, nil
		}
		if os.dialing != nil {
			ch := os.dialing
			c.mu.Unlock()
			select {
			case <-ch:
			case <-c.cancel:
				return nil, errLoadOver
			}
			continue
		}
		if os.everConnected {
			if os.redials >= 1 {
				c.mu.Unlock()
				return nil, errRedialBudget
			}
			os.redials++
		}
		ch := make(chan struct{})
		os.dialing = ch
		c.mu.Unlock()

		var ds obs.Span
		if c.Trace.Enabled() {
			ds = c.Trace.Begin(obs.TrackNet, "dial", obs.Arg{Key: "origin", Val: origin})
		}
		var dialStart time.Time
		if c.Metrics != nil {
			dialStart = time.Now()
		}
		cc, err := c.dialOrigin(origin, host)
		if c.Metrics != nil {
			c.lt.dialMs.Observe(float64(time.Since(dialStart)) / float64(time.Millisecond))
		}
		if ds.Active() {
			if err != nil {
				ds.End(obs.Arg{Key: "error", Val: err.Error()})
			} else {
				ds.End()
			}
		}

		c.mu.Lock()
		os.dialing = nil
		if err != nil {
			os.fails++
		} else if c.finished {
			// The load ended mid-dial; the report is out, so this conn
			// belongs to nobody.
			c.mu.Unlock()
			close(ch)
			cc.Close()
			return nil, errLoadOver
		} else {
			os.conn = cc
			os.everConnected = true
			os.mConns.Set(1)
		}
		c.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, &dialError{origin: origin, err: err}
		}
		return cc, nil
	}
}

// dialOrigin opens one transport with the dial timeout applied.
func (c *Client) dialOrigin(origin, host string) (OriginConn, error) {
	type res struct {
		oc  OriginConn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		oc, err := c.dialRaw(origin, host)
		ch <- res{oc, err}
	}()
	t := time.NewTimer(c.dialTimeout())
	defer t.Stop()
	select {
	case r := <-ch:
		return r.oc, r.err
	case <-t.C:
		// Reap the conn if the straggling dial ever completes.
		go func() {
			if r := <-ch; r.err == nil && r.oc != nil {
				r.oc.Close()
			}
		}()
		return nil, fmt.Errorf("dial timed out after %v", c.dialTimeout())
	}
}

func (c *Client) dialRaw(origin, host string) (OriginConn, error) {
	if c.DialOrigin != nil {
		oc, err := c.DialOrigin(origin)
		if err != nil {
			return nil, err
		}
		if cc, ok := oc.(*h2.ClientConn); ok {
			cc.OnPush = func(resp *h2.Response) { c.onPush(host, resp) }
			cc.Instrument(c.Trace, "conn:"+origin, c.Metrics)
		}
		return oc, nil
	}
	nc, err := c.Dial(origin)
	if err != nil {
		return nil, err
	}
	cc, err := h2.NewClientConn(nc)
	if err != nil {
		return nil, err
	}
	cc.OnPush = func(resp *h2.Response) { c.onPush(host, resp) }
	cc.Instrument(c.Trace, "conn:"+origin, c.Metrics)
	return cc, nil
}

// noteSuccess clears the origin's breaker count.
func (c *Client) noteSuccess(origin string) {
	c.mu.Lock()
	os := c.originState(origin)
	os.fails = 0
	os.mBreaker.Set(0)
	c.mu.Unlock()
}

// noteConnFailure counts a failure toward the breaker and evicts the conn
// when the error says the whole connection — not just one stream — is
// broken, so the (budgeted) re-dial starts fresh.
func (c *Client) noteConnFailure(origin string, cc OriginConn, err error) {
	evict := false
	tripped := false
	c.mu.Lock()
	os := c.originState(origin)
	os.fails++
	if th := c.breakerThreshold(); th > 0 && os.fails == th {
		tripped = true
		os.mBreaker.Set(1)
	}
	var se h2.StreamError
	if sh, ok := cc.(selfHealing); (!ok || !sh.SelfHealing()) && !errors.As(err, &se) {
		if os.conn == cc {
			os.conn = nil
			os.mConns.Set(0)
			evict = true
		}
	}
	c.mu.Unlock()
	if tripped {
		if c.Metrics != nil {
			c.cv().trips.With(origin).Inc()
		}
		if c.Trace.Enabled() {
			c.Trace.Instant(obs.TrackNet, "breaker-open", obs.Arg{Key: "origin", Val: origin})
		}
	}
	if evict {
		if c.Trace.Enabled() {
			c.Trace.Instant(obs.TrackNet, "conn-evicted", obs.Arg{Key: "origin", Val: origin})
		}
		cc.Close()
	}
}

// classifyErr maps a fetch error to its typed kind and whether it was a
// client-imposed timeout.
func classifyErr(err error) (ErrKind, bool) {
	var te *h2.TimeoutError
	if errors.As(err, &te) {
		if te.Phase == "headers" {
			return FetchTimeoutHeaders, true
		}
		return FetchTimeoutStall, true
	}
	var be breakerOpenError
	if errors.As(err, &be) {
		return FetchBreaker, false
	}
	if errors.Is(err, errLoadOver) {
		return FetchDeadline, false
	}
	var de *dialError
	if errors.As(err, &de) {
		return FetchDial, false
	}
	var se h2.StreamError
	if errors.As(err, &se) {
		return FetchStream, false
	}
	return FetchConn, false
}

// retryableErr reports whether replaying the (idempotent GET) fetch could
// help.
func retryableErr(err error) bool {
	if errors.Is(err, errLoadOver) || errors.Is(err, errRedialBudget) {
		return false
	}
	var be breakerOpenError
	if errors.As(err, &be) {
		return false
	}
	var te *h2.TimeoutError
	if errors.As(err, &te) {
		return true
	}
	if h2.Retryable(err) {
		return true // REFUSED_STREAM, CANCEL, graceful GOAWAY
	}
	var se h2.StreamError
	if errors.As(err, &se) {
		return false // protocol-class stream reset: a replay hits the same bug
	}
	var ce h2.ConnError
	if errors.As(err, &ce) {
		return false // protocol integrity failure
	}
	var ga h2.GoAwayError
	if errors.As(err, &ga) {
		return false // errored GOAWAY
	}
	// Dial failures, broken pipes, evicted conns: replayable for GETs.
	return true
}

// onPush stores pushed responses in the push cache and satisfies waiters.
// Pushed bodies are analyzed only when the page references them (through
// doFetch); pushes the page never needs are recorded as waste at load end.
func (c *Client) onPush(host string, resp *h2.Response) {
	if resp.Request == nil {
		return
	}
	u := urlutil.URL{Scheme: "https", Host: resp.Request.Authority, Path: resp.Request.Path}
	key := u.String()
	c.lt.pushReceived.Inc()
	if c.Trace.Enabled() {
		c.Trace.Instant(obs.TrackLoad, "push-received", obs.Arg{Key: "url", Val: key})
	}
	c.mu.Lock()
	if _, dup := c.pushedResp[key]; !dup {
		// Count each pushed URL once even if the server ever re-pushes it,
		// so Pushed stays exactly Used + Wasted.
		c.pushArrival[key] = time.Now()
		pq := c.pushQualLocked(u.Host)
		pq.Pushed++
		pq.PushedBytes += int64(len(resp.Body))
	}
	c.pushedResp[key] = resp
	waiters := c.pushWaiters[key]
	delete(c.pushWaiters, key)
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- resp
	}
}
