package wire

import (
	"net"
	"testing"

	"vroom/internal/netem"
	"vroom/internal/replay"
	"vroom/internal/webpage"
)

// TestWireCompleteness verifies both wire clients fetch exactly the
// archive's reachable resources: the baseline client must cover the archive
// with no extras; the staged Vroom client additionally fetches the ad
// servers' crawler-personalized stale hints (a bounded, expected cost of
// hints for personalized iframe content) but must never miss anything.
func TestWireCompleteness(t *testing.T) {
	site := webpage.NewSite("dailynews00", webpage.News, 2017)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 11}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, sn.Time, webpage.PhoneSmall)
	for _, staged := range []bool{true, false} {
		srv := NewServer(archive, resolver, webpage.PhoneSmall, ServerConfig{SendHints: staged, Push: staged})
		link := netem.Listen(netem.LinkConfig{})
		go srv.H2().Serve(link)
		c := &Client{Dial: func(string) (net.Conn, error) { return link.Dial() }, Staged: staged}
		root, err := archive.Records[0].ParsedURL()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.LoadPage(root)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, f := range rep.Fetches {
			got[f.URL]++
		}
		var missing, extra, dup int
		for _, r := range archive.Records {
			if got[r.URL] == 0 {
				missing++
				t.Errorf("staged=%v: missing %s", staged, r.URL)
			}
		}
		want := map[string]bool{}
		for _, r := range archive.Records {
			want[r.URL] = true
		}
		for u, n := range got {
			if !want[u] {
				extra++
			}
			if n > 1 {
				dup++
				t.Errorf("staged=%v: %s fetched %d times", staged, u, n)
			}
		}
		if !staged && extra != 0 {
			t.Errorf("baseline fetched %d URLs outside the archive", extra)
		}
		if staged && extra > archive.Len()/10 {
			t.Errorf("staged client fetched %d stale URLs (>10%% of archive)", extra)
		}
		t.Logf("staged=%v fetched=%d archive=%d extra=%d", staged, len(rep.Fetches), archive.Len(), extra)
		srv.H2().Close()
		link.Close()
	}
}
