// Package wire runs Vroom over real connections: an HTTP/2 replay server
// that attaches dependency hints and pushes high-priority same-origin
// resources, and a staged client that fetches a page the way Vroom's
// request scheduler does (§5). Together with netem links these form the
// live-wire counterpart of the simulation.
package wire

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"vroom/internal/core"
	"vroom/internal/faults"
	"vroom/internal/h2"
	"vroom/internal/hints"
	"vroom/internal/hintstore"
	"vroom/internal/obs"
	"vroom/internal/overload"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// Degradation protocol headers. The client sends its remaining per-attempt
// budget so the server's admission queue never holds a request past the
// moment its client would give up; the server tags every response it
// degraded so clients and load tests can account for shed work.
const (
	// HeaderDeadline carries the client's remaining header budget in
	// integer milliseconds.
	HeaderDeadline = "vroom-deadline-ms"
	// HeaderDegraded lists the degradation modes applied to a response,
	// comma-separated.
	HeaderDegraded = "vroom-degraded"
)

// Degradation mode tokens carried in HeaderDegraded, one per rung actually
// taken. "shed-request" appears on 503s from admission control; the others
// ride on otherwise-normal responses.
const (
	DegradedStaleHints  = "stale-hints"
	DegradedShedHints   = "shed-hints"
	DegradedShedPush    = "shed-push"
	DegradedShedRequest = "shed-request"
	// DegradedStaleRestore tags hints served from a table restored off disk
	// at cold start that background retraining has not refreshed yet:
	// correct as of the previous process, possibly behind the site's churn.
	DegradedStaleRestore = "stale-restore"
)

// ServerConfig controls the replay server's Vroom behaviour.
type ServerConfig struct {
	// SendHints attaches Table-1 headers to HTML responses.
	SendHints bool
	// Push pushes high-priority same-origin dependencies of HTML
	// responses.
	Push bool
	// ThinkTime delays every response, emulating backend work.
	ThinkTime time.Duration
	// ProfileLabels stamps every request's handler goroutine with pprof
	// labels (origin, phase) so CPU and goroutine profiles decompose per
	// tenant. Off by default: labeling allocates a label set per request,
	// which the zero-alloc serving contract only tolerates opt-in.
	ProfileLabels bool
}

// Server replays an archive over HTTP/2, serving every authority in the
// archive (clients open one connection per origin, all reaching this
// server, exactly like Mahimahi's shells).
type Server struct {
	Archive  *replay.Archive
	Resolver *core.Resolver
	Device   webpage.DeviceClass
	Cfg      ServerConfig

	// Faults, when set, injects seeded server-side failures into replayed
	// responses: stale hints (404s and redirects to the moved content) and
	// transient 503s. Wire-level faults — outages, brownouts, resets,
	// stalls, truncation — belong to netem.FaultShim on the client's dials;
	// both sides can share one Plan (its methods serialize internally).
	Faults *faults.Plan

	// Store, when set, serves hints from the multi-tenant hint store keyed
	// by document host; Resolver remains the fallback for origins the store
	// does not hold. Set before Serve.
	Store *hintstore.Store
	// Gate, when set, applies admission control and drives the degradation
	// ladder: a request refused admission is answered 503 (retryable), a
	// loaded-but-admitting gate sheds push first and hints next, never the
	// response. Set before Serve.
	Gate *overload.Gate

	// Log, when set, emits structured serving-path events: sheds and
	// injected faults at Debug (stamped with the caller's trace ID when one
	// was propagated), drains at Info. Nil disables logging.
	Log *slog.Logger

	// Acct, when set, reconciles emitted hints and pushed resources against
	// the requests that arrive (see Accountant). Nil disables accounting at
	// zero cost. Set before Serve.
	Acct *Accountant

	h2srv *h2.Server

	mu     sync.Mutex
	pushed map[string]bool
	// redirects remembers mangled stale-hint URLs -> fresh URLs so the
	// server can answer the client's fetch of a stale hint with a 301.
	redirects map[string]string
	// Stats, exported only through the locked Stats() snapshot.
	requests int
	pushes   int
	shed     int
	degraded map[string]int // by mode token

	trace *obs.Tracer
	reg   *telemetry.Registry
	mReqs map[string]*telemetry.Counter // by proto
	mPush *telemetry.Counter
	mShed *telemetry.Counter
	// Bounded per-origin breakdowns (requests/shed/degraded), nil when
	// uninstrumented.
	vReqs *telemetry.CounterVec
	vShed *telemetry.CounterVec
	vDegr *telemetry.CounterVec

	// bodies memoizes the per-record response bytes (archive bodies are
	// strings; fillers are synthesized). Keyed by *replay.Record, so the
	// cache is bounded by the archive. The cached slices are shared across
	// responses and written straight to the wire, which only ever reads
	// them; nothing in the serving path may mutate a body it got from
	// body().
	bodies sync.Map
}

// ServerStats is a point-in-time snapshot of the server's counters.
type ServerStats struct {
	// Requests counts served requests (admitted ones; shed requests are
	// counted in Shed instead).
	Requests int
	// Pushes counts resources pushed to clients.
	Pushes int
	// Shed counts requests refused by admission control.
	Shed int
	// Degraded counts responses by degradation mode token (stale-hints,
	// shed-hints, shed-push).
	Degraded map[string]int
}

// Stats returns a consistent snapshot of the server's counters. The bare
// fields these replace were racy to read while serving.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ServerStats{Requests: s.requests, Pushes: s.pushes, Shed: s.shed}
	if len(s.degraded) > 0 {
		st.Degraded = make(map[string]int, len(s.degraded))
		for k, v := range s.degraded {
			st.Degraded[k] = v
		}
	}
	return st
}

// NewServer builds a replay server. resolver may be nil when hints are
// disabled.
func NewServer(a *replay.Archive, resolver *core.Resolver, device webpage.DeviceClass, cfg ServerConfig) *Server {
	s := &Server{Archive: a, Resolver: resolver, Device: device, Cfg: cfg,
		pushed: make(map[string]bool), redirects: make(map[string]string),
		degraded: make(map[string]int)}
	// The transport refuses streams outright (REFUSED_STREAM — retryable)
	// once the gate could only shed them anyway; cheaper than spending a
	// handler goroutine to say 503. Saturated is nil-gate safe.
	s.h2srv = &h2.Server{Handler: s, Overloaded: func() bool { return s.Gate.Saturated() }}
	return s
}

// H2 exposes the underlying HTTP/2 server for Serve/Close.
func (s *Server) H2() *h2.Server { return s.h2srv }

// Instrument attaches tracing and metrics to the server and its HTTP/2
// core: request/push/injected-fault counters here, connection and drain
// gauges below. Call before Serve; nil arguments cost nothing.
func (s *Server) Instrument(tr *obs.Tracer, reg *telemetry.Registry) {
	s.trace = tr
	s.h2srv.Trace = tr
	s.h2srv.Metrics = reg
	s.reg = reg
	if reg == nil {
		return
	}
	reg.Describe("vroom_server_requests_total", "Requests served, by protocol.")
	reg.Describe("vroom_server_pushes_total", "Resources pushed to clients.")
	reg.Describe("vroom_server_injected_faults_total", "Seeded server-side faults served, by kind.")
	reg.Describe("vroom_server_shed_total", "Requests refused by admission control (503).")
	reg.Describe("vroom_server_degraded_total", "Degraded responses, by mode (stale-hints, shed-hints, shed-push).")
	s.mReqs = map[string]*telemetry.Counter{
		"h1": reg.Counter("vroom_server_requests_total", telemetry.L("proto", "h1")),
		"h2": reg.Counter("vroom_server_requests_total", telemetry.L("proto", "h2")),
	}
	s.mPush = reg.Counter("vroom_server_pushes_total")
	s.mShed = reg.Counter("vroom_server_shed_total")
	reg.Describe("vroom_server_origin_requests_total", "Requests served, by origin (bounded cardinality).")
	reg.Describe("vroom_server_origin_shed_total", "Requests refused by admission control, by origin.")
	reg.Describe("vroom_server_origin_degraded_total", "Degraded responses, by origin and mode.")
	s.vReqs = reg.CounterVec("vroom_server_origin_requests_total", "origin", 0)
	s.vShed = reg.CounterVec("vroom_server_origin_shed_total", "origin", 0)
	s.vDegr = reg.CounterVec("vroom_server_origin_degraded_total", "origin", 0)
	if s.Store != nil {
		s.Store.Instrument(reg)
	}
}

// noteRequest counts one served request.
func (s *Server) noteRequest(proto, origin string) {
	s.mu.Lock()
	s.requests++
	ctr := s.mReqs[proto]
	s.mu.Unlock()
	ctr.Inc()
	s.vReqs.With(origin).Inc()
}

// serveTrace is one request's adopted trace context: the serve span
// wrapping the handler plus the flow/trace IDs parsed from the client's
// obs.TraceHeader (empty when the client didn't propagate one). The zero
// value is the untraced fast path.
type serveTrace struct {
	span  obs.Span
	flow  string // the obs.TraceHeader value, verbatim — the ArgFlow value
	trace string // the 16-hex trace half, for ArgTrace and log stamping
}

// traceArgs appends the adopted flow/trace args to extra. Only called on
// enabled-tracer paths, so the append may allocate.
func (st *serveTrace) traceArgs(extra ...obs.Arg) []obs.Arg {
	if st.flow == "" {
		return extra
	}
	return append(extra,
		obs.Arg{Key: obs.ArgFlow, Val: st.flow},
		obs.Arg{Key: obs.ArgTrace, Val: st.trace})
}

// beginServe parses the request's propagated trace context and opens the
// serve span wrapping the whole handler. Cheap when neither tracing nor
// logging is on.
func (s *Server) beginServe(proto string, r *h2.Request) serveTrace {
	var st serveTrace
	if s.trace == nil && s.Log == nil {
		return st
	}
	if vals := r.Header[obs.TraceHeader]; len(vals) > 0 {
		if tc, ok := obs.ParseTraceHeader(vals[0]); ok {
			st.flow = vals[0]
			st.trace = tc.TraceID()
		}
	}
	if s.trace.Enabled() {
		st.span = s.trace.Begin(obs.TrackServer, "serve",
			st.traceArgs(obs.Arg{Key: "proto", Val: proto}, obs.Arg{Key: "path", Val: r.Path})...)
	}
	return st
}

// child opens a server-side sub-span carrying the request's adopted
// context, so every stage of the serving path joins the caller's flow.
func (s *Server) child(st *serveTrace, name string, extra ...obs.Arg) obs.Span {
	if !st.span.Active() {
		return obs.Span{}
	}
	return s.trace.Begin(obs.TrackServer, name, st.traceArgs(extra...)...)
}

// noteShed counts one request refused by admission.
func (s *Server) noteShed(st *serveTrace, origin string) {
	s.mu.Lock()
	s.shed++
	s.mu.Unlock()
	s.mShed.Inc()
	s.vShed.With(origin).Inc()
	if s.trace.Enabled() {
		s.trace.Instant(obs.TrackServer, "request-shed", st.traceArgs()...)
	}
	if s.Log != nil {
		s.Log.Debug("request shed", "trace", st.trace)
	}
}

// noteDegraded counts a response's degradation modes and records the
// ladder decision against the caller's trace.
func (s *Server) noteDegraded(modes []string, st *serveTrace, origin string) {
	if len(modes) == 0 {
		return
	}
	s.mu.Lock()
	for _, m := range modes {
		s.degraded[m]++
	}
	reg := s.reg
	s.mu.Unlock()
	if reg != nil {
		for _, m := range modes {
			reg.Counter("vroom_server_degraded_total", telemetry.L("mode", m)).Inc()
		}
	}
	s.vDegr.With(origin).Add(int64(len(modes)))
	if s.trace.Enabled() {
		s.trace.Instant(obs.TrackServer, "degrade",
			st.traceArgs(obs.Arg{Key: "modes", Val: strings.Join(modes, ",")})...)
	}
	if s.Log != nil {
		s.Log.Debug("response degraded", "modes", strings.Join(modes, ","), "trace", st.trace)
	}
}

// requestDeadline derives the server-side admission deadline from the
// client's HeaderDeadline budget. Zero means no deadline was sent.
func requestDeadline(r *h2.Request) time.Time {
	vals := r.Header[HeaderDeadline]
	if len(vals) == 0 {
		return time.Time{}
	}
	ms, err := strconv.Atoi(vals[0])
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}

// admit runs a request through the admission gate. On refusal it returns
// false and the 503 the caller must answer with; the gate's slot is held
// until release is called. The admission span covers exactly the gate
// wait — the queueing a propagated trace exists to make visible.
func (s *Server) admit(r *h2.Request, st *serveTrace) (release func(), refusal *h2.Response) {
	as := s.child(st, "admission")
	err := s.Gate.Acquire(requestDeadline(r))
	if err == nil {
		as.End(obs.Arg{Key: "result", Val: "admitted"})
		return func() { s.Gate.Release() }, nil
	}
	as.End(obs.Arg{Key: "result", Val: "shed"})
	s.noteShed(st, r.Authority)
	return nil, &h2.Response{Status: 503,
		Header: map[string][]string{
			"content-type": {"text/plain"},
			"retry-after":  {"1"},
			HeaderDegraded: {DegradedShedRequest},
		},
		Body: []byte("server overloaded: " + err.Error())}
}

// hintsFor resolves a document's hints through the store (multi-tenant,
// stale-while-revalidate) or the fallback resolver, appending any
// degradation modes taken to degraded. The hint-lookup span records which
// source answered, tied to the caller's flow.
func (s *Server) hintsFor(u urlutil.URL, body string, degraded *[]string, st *serveTrace) []hints.Hint {
	sp := s.child(st, "hint-lookup", obs.Arg{Key: "url", Val: u.String()})
	source := "none"
	defer func() {
		sp.End(obs.Arg{Key: "source", Val: source})
	}()
	if s.Store != nil {
		hs, res := s.Store.Lookup(u, body)
		if res.Restored && res.Source != hintstore.Miss {
			*degraded = append(*degraded, DegradedStaleRestore)
		}
		switch res.Source {
		case hintstore.Fresh:
			source = "fresh"
			out := s.staleify(hs)
			s.Acct.NoteHints(u.Host, out, res.Age, true)
			return out
		case hintstore.Stale:
			source = "stale"
			*degraded = append(*degraded, DegradedStaleHints)
			out := s.staleify(hs)
			s.Acct.NoteHints(u.Host, out, res.Age, true)
			return out
		case hintstore.Shed:
			source = "shed"
			*degraded = append(*degraded, DegradedShedHints)
			return nil
		}
		// Miss: the origin is not a store tenant; fall back.
	}
	if s.Resolver == nil {
		return nil
	}
	source = "fallback"
	// Fallback hints carry no table identity, so no staleness age.
	out := s.staleify(s.Resolver.HintsFor(u, body, s.Device))
	s.Acct.NoteHints(u.Host, out, 0, false)
	return out
}

// noteFault counts one injected fault served to a client.
func (s *Server) noteFault(kind, url string, st *serveTrace) {
	if s.reg != nil {
		s.reg.Counter("vroom_server_injected_faults_total", telemetry.L("kind", kind)).Inc()
	}
	if s.trace.Enabled() {
		s.trace.Instant(obs.TrackServer, "injected-fault",
			st.traceArgs(obs.Arg{Key: "kind", Val: kind}, obs.Arg{Key: "url", Val: url})...)
	}
	if s.Log != nil {
		s.Log.Debug("injected fault", "kind", kind, "url", url, "trace", st.trace)
	}
}

// Drain gracefully shuts the serving path down: the admission gate sheds
// its queue and refuses new work, the HTTP/2 side sends GOAWAY on every
// connection (in-flight streams get up to timeout to finish, new streams
// are refused retryably), and the hint store cancels in-flight retraining
// and checkpoints every shard. The caller closes its listener. The returned
// checkpoints are nil when no store is attached.
func (s *Server) Drain(timeout time.Duration) []hintstore.Checkpoint {
	if s.Log != nil {
		s.Log.Info("drain started", "timeout", timeout)
	}
	s.Gate.Drain()
	s.h2srv.Drain(timeout)
	if n := s.Acct.Flush(); n > 0 && s.Log != nil {
		s.Log.Debug("accounting flushed", "windows", n)
	}
	cps := s.Store.Drain(timeout)
	if s.Log != nil {
		s.Log.Info("drain finished", "checkpoints", len(cps))
	}
	return cps
}

// ServeH1 implements h1.Handler: the same replay content over HTTP/1.1.
// Dependency hints still work (Link headers predate HTTP/2) but there is
// no push.
func (s *Server) ServeH1(r *h2.Request) *h2.Response {
	if !s.Cfg.ProfileLabels {
		return s.serveH1(r)
	}
	var resp *h2.Response
	pprof.Do(context.Background(), pprof.Labels("origin", r.Authority, "phase", "serve-h1"),
		func(context.Context) { resp = s.serveH1(r) })
	return resp
}

func (s *Server) serveH1(r *h2.Request) *h2.Response {
	st := s.beginServe("h1", r)
	defer st.span.End()
	release, refusal := s.admit(r, &st)
	if refusal != nil {
		return refusal
	}
	defer release()
	if s.Cfg.ThinkTime > 0 {
		time.Sleep(s.Cfg.ThinkTime)
	}
	s.noteRequest("h1", r.Authority)

	key := "https://" + r.Authority + r.Path
	if fresh := s.redirectFor(key); fresh != "" {
		s.Acct.NoteRequest(r.Authority, key, false)
		s.noteFault("stale-redirect", key, &st)
		return &h2.Response{Status: 301,
			Header: map[string][]string{"content-type": {"text/plain"}, "location": {fresh}},
			Body:   []byte("moved: " + fresh)}
	}
	rec, ok := s.Archive.Lookup(key)
	if !ok {
		s.Acct.NoteRequest(r.Authority, key, false)
		return &h2.Response{Status: 404, Header: map[string][]string{"content-type": {"text/plain"}},
			Body: []byte("not in archive")}
	}
	s.Acct.NoteRequest(r.Authority, key, rec.ResourceType() == webpage.HTML)
	if s.faulted(rec) {
		s.noteFault("transient-503", key, &st)
		return &h2.Response{Status: 503, Header: map[string][]string{"content-type": {"text/plain"}},
			Body: []byte("injected transient error")}
	}
	resp := &h2.Response{Status: 200, Header: map[string][]string{"content-type": {contentType(rec)}}, Body: s.body(rec)}
	var degraded []string
	if rec.ResourceType() == webpage.HTML && s.Cfg.SendHints {
		if s.Gate.Level() >= overload.LevelShedHints {
			degraded = append(degraded, DegradedShedHints)
		} else if u, err := rec.ParsedURL(); err == nil {
			for name, vals := range hints.Format(s.hintsFor(u, rec.Body, &degraded, &st)) {
				resp.Header[name] = vals
			}
		}
	}
	if len(degraded) > 0 {
		resp.Header[HeaderDegraded] = []string{strings.Join(degraded, ", ")}
		s.noteDegraded(degraded, &st, r.Authority)
	}
	return resp
}

// ServeH2 implements h2.Handler.
func (s *Server) ServeH2(w *h2.ResponseWriter, r *h2.Request) {
	if !s.Cfg.ProfileLabels {
		s.serveH2(w, r)
		return
	}
	pprof.Do(context.Background(), pprof.Labels("origin", r.Authority, "phase", "serve-h2"),
		func(context.Context) { s.serveH2(w, r) })
}

func (s *Server) serveH2(w *h2.ResponseWriter, r *h2.Request) {
	st := s.beginServe("h2", r)
	defer st.span.End()
	release, refusal := s.admit(r, &st)
	if refusal != nil {
		for name, vals := range refusal.Header {
			w.Header()[name] = vals
		}
		w.WriteHeader(refusal.Status)
		w.Write(refusal.Body)
		return
	}
	defer release()
	if s.Cfg.ThinkTime > 0 {
		time.Sleep(s.Cfg.ThinkTime)
	}
	s.noteRequest("h2", r.Authority)

	key := "https://" + r.Authority + r.Path
	if fresh := s.redirectFor(key); fresh != "" {
		s.Acct.NoteRequest(r.Authority, key, false)
		s.noteFault("stale-redirect", key, &st)
		w.Header()["content-type"] = []string{"text/plain"}
		w.Header()["location"] = []string{fresh}
		w.WriteHeader(301)
		w.Write([]byte("moved: " + fresh))
		return
	}
	rec, ok := s.Archive.Lookup(key)
	if !ok {
		// Tolerate scheme differences in lookups.
		rec, ok = s.Archive.Lookup(r.Scheme + "://" + r.Authority + r.Path)
	}
	if !ok {
		s.Acct.NoteRequest(r.Authority, key, false)
		w.Header()["content-type"] = []string{"text/plain"}
		w.WriteHeader(404)
		w.Write([]byte("not in archive: " + key))
		return
	}
	s.Acct.NoteRequest(r.Authority, key, rec.ResourceType() == webpage.HTML)
	if s.faulted(rec) {
		s.noteFault("transient-503", key, &st)
		w.Header()["content-type"] = []string{"text/plain"}
		w.WriteHeader(503)
		w.Write([]byte("injected transient error"))
		return
	}

	w.Header()["content-type"] = []string{contentType(rec)}
	// The degradation ladder, read once per response: shed push first,
	// hints next, never the response body itself.
	level := s.Gate.Level()
	var degraded []string
	var hs []hints.Hint
	if rec.ResourceType() == webpage.HTML && (s.Cfg.SendHints || s.Cfg.Push) {
		if level >= overload.LevelShedHints {
			degraded = append(degraded, DegradedShedHints)
		} else if u, err := rec.ParsedURL(); err == nil {
			hs = s.hintsFor(u, rec.Body, &degraded, &st)
		}
	}
	if s.Cfg.SendHints && len(hs) > 0 {
		for name, vals := range hints.Format(hs) {
			w.Header()[name] = vals
		}
	}
	if s.Cfg.Push && len(hs) > 0 {
		if level >= overload.LevelShedPush {
			degraded = append(degraded, DegradedShedPush)
		} else if dl := requestDeadline(r); !dl.IsZero() && time.Until(dl) < 10*time.Millisecond {
			// The client is nearly out of budget: speculative bytes now
			// would only compete with the response it is waiting for.
			degraded = append(degraded, DegradedShedPush)
		} else {
			s.push(w, r, hs, &st)
		}
	}
	if len(degraded) > 0 {
		w.Header()[HeaderDegraded] = []string{strings.Join(degraded, ", ")}
		s.noteDegraded(degraded, &st, r.Authority)
	}
	w.Write(s.body(rec))
}

// push pushes same-origin high-priority dependencies, once per URL. Each
// pushed write runs under its own span carrying the requesting fetch's
// flow, so a push's cost lands on the load that triggered it.
func (s *Server) push(w *h2.ResponseWriter, r *h2.Request, hs []hints.Hint, st *serveTrace) {
	docURL := urlutil.URL{Scheme: "https", Host: r.Authority, Path: r.Path}
	for _, u := range core.PushSet(hs, docURL, false) {
		key := u.String()
		s.mu.Lock()
		dup := s.pushed[key]
		if !dup {
			s.pushed[key] = true
		}
		s.mu.Unlock()
		if dup {
			continue
		}
		rec, ok := s.Archive.Lookup(key)
		if !ok {
			continue
		}
		pw, err := w.Push(&h2.Request{Scheme: u.Scheme, Authority: u.Host, Path: u.Path})
		if err != nil {
			return // peer disabled push
		}
		s.mu.Lock()
		s.pushes++
		s.mu.Unlock()
		s.mPush.Inc()
		// Body bytes are known at push-decision time (memoized), so the
		// accountant can mark the prediction window pushed before the client
		// could possibly react to it.
		body := s.body(rec)
		s.Acct.NotePush(u.Host, key, int64(len(body)))
		if s.trace.Enabled() {
			s.trace.Instant(obs.TrackServer, "push", st.traceArgs(obs.Arg{Key: "url", Val: key})...)
		}
		// Begin the span here, not in the goroutine: the push decision is
		// part of serving the document, so the span opens before the client
		// can possibly see the HTML (a snapshot taken after the load always
		// contains it); the End still marks when the bytes were flushed.
		ps := s.child(st, "push-write", obs.Arg{Key: "url", Val: key})
		go func(rec *replay.Record, body []byte, ps obs.Span) {
			pw.Header()["content-type"] = []string{contentType(rec)}
			pw.Write(body)
			pw.Close()
			ps.End(obs.Arg{Key: "bytes", Val: strconv.Itoa(len(body))})
		}(rec, body, ps)
	}
}

// staleify passes served hints through the fault plan: a stale hint's URL
// is mangled to what an outdated resolver view would carry, and redirecting
// ones are remembered so the lookup path can answer them with a 301. Mangled
// URLs stay same-origin, so they never land on a push stream (not in the
// archive) and the client's fetch reaches this server.
func (s *Server) staleify(hs []hints.Hint) []hints.Hint {
	if s.Faults == nil || len(hs) == 0 {
		return hs
	}
	out := make([]hints.Hint, len(hs))
	for i, h := range hs {
		m, fate := s.Faults.StaleHint(h.URL)
		switch fate {
		case faults.HintRedirect:
			s.mu.Lock()
			s.redirects[m.String()] = h.URL.String()
			s.mu.Unlock()
			h.URL = m
		case faults.HintGone:
			h.URL = m
		}
		out[i] = h
	}
	return out
}

// redirectFor returns the fresh URL a stale-hint redirect points at, or "".
func (s *Server) redirectFor(key string) string {
	if s.Faults == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redirects[key]
}

// faulted reports whether the plan injects a transient server error (503)
// for this record's URL. Wire-level verdicts (truncate/stall/reset) are
// drawn separately by the netem shim; only FaultError is a server concern.
func (s *Server) faulted(rec *replay.Record) bool {
	if s.Faults == nil {
		return false
	}
	u, err := rec.ParsedURL()
	if err != nil {
		return false
	}
	return s.Faults.ResponseVerdict(u) == faults.FaultError
}

// body returns the record's bytes: real content for text resources,
// deterministic filler for binary ones (sizes are what matter on the
// wire). Bodies are built once per record and memoized — converting the
// archive string per response was a whole-body allocation on every
// request. The returned slice is shared: treat it as read-only.
func (s *Server) body(rec *replay.Record) []byte {
	if b, ok := s.bodies.Load(rec); ok {
		return b.([]byte)
	}
	var b []byte
	if rec.Body != "" {
		b = []byte(rec.Body)
	} else {
		n := rec.Size
		if n <= 0 {
			n = 1
		}
		b = bytes.Repeat([]byte{0xa5}, n)
	}
	actual, _ := s.bodies.LoadOrStore(rec, b)
	return actual.([]byte)
}

func contentType(rec *replay.Record) string {
	switch rec.ResourceType() {
	case webpage.HTML:
		return "text/html; charset=utf-8"
	case webpage.CSS:
		return "text/css"
	case webpage.JS:
		return "application/javascript"
	case webpage.Image:
		return "image/jpeg"
	case webpage.Font:
		return "font/woff2"
	case webpage.JSON:
		return "application/json"
	case webpage.Media:
		return "video/mp4"
	default:
		return "application/octet-stream"
	}
}

// TrainResolver builds and trains a resolver for a site the way a
// Vroom-compliant deployment would, ready to hand to NewServer.
func TrainResolver(site *webpage.Site, at time.Time, device webpage.DeviceClass) *core.Resolver {
	r := core.NewResolver(core.DefaultResolverConfig())
	r.Train(site, at, device)
	return r
}

var _ h2.Handler = (*Server)(nil)

// ErrNotServed reports a URL outside the archive.
var ErrNotServed = fmt.Errorf("wire: resource not in archive")
