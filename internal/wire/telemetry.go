package wire

import (
	"strconv"

	"vroom/internal/obs"
	"vroom/internal/telemetry"
)

// Client-side metric names. Per-origin series are labelled origin; phase
// histograms are labelled phase (dial on this side; headers/body come from
// h2, exchange from h1 — all into the same family).
const (
	mRequests   = "vroom_wire_requests_total"
	mRetries    = "vroom_wire_retries_total"
	mFailures   = "vroom_wire_failures_total"
	mRedirects  = "vroom_wire_redirects_total"
	mFetchMs    = "vroom_wire_fetch_ms"
	mPhaseMs    = "vroom_wire_fetch_phase_ms"
	mPush       = "vroom_wire_push_total"
	mPushLeadMs = "vroom_wire_push_lead_ms"
	mBreakTrips = "vroom_wire_breaker_trips_total"
	mBreakOpen  = "vroom_wire_breaker_open"
	mActiveConn = "vroom_wire_active_conns"
	mLoads      = "vroom_wire_loads_total"
	mDeadlines  = "vroom_wire_deadline_total"
)

// loadTelemetry bundles the handles one page load updates on its hot path,
// resolved once at LoadPage start. The zero value (all-nil handles) is the
// disabled fast path: every method call no-ops without allocating, the
// same contract as a nil *obs.Tracer.
type loadTelemetry struct {
	loads         *telemetry.Counter
	deadlines     *telemetry.Counter
	fetchOkMs     *telemetry.Histogram
	fetchErrMs    *telemetry.Histogram
	dialMs        *telemetry.Histogram
	pushReceived  *telemetry.Counter
	pushClaimed   *telemetry.Counter
	pushUnclaimed *telemetry.Counter
	pushLeadMs    *telemetry.Histogram
}

func newLoadTelemetry(reg *telemetry.Registry) loadTelemetry {
	if reg == nil {
		return loadTelemetry{}
	}
	describeClientMetrics(reg)
	return loadTelemetry{
		loads:         reg.Counter(mLoads),
		deadlines:     reg.Counter(mDeadlines),
		fetchOkMs:     reg.Histogram(mFetchMs, telemetry.L("outcome", "ok")),
		fetchErrMs:    reg.Histogram(mFetchMs, telemetry.L("outcome", "error")),
		dialMs:        reg.Histogram(mPhaseMs, telemetry.L("phase", "dial")),
		pushReceived:  reg.Counter(mPush, telemetry.L("state", "received")),
		pushClaimed:   reg.Counter(mPush, telemetry.L("state", "claimed")),
		pushUnclaimed: reg.Counter(mPush, telemetry.L("state", "unclaimed")),
		pushLeadMs:    reg.Histogram(mPushLeadMs),
	}
}

// describeClientMetrics attaches HELP text for every client-side family.
func describeClientMetrics(reg *telemetry.Registry) {
	reg.Describe(mRequests, "Round-trip attempts issued per origin.")
	reg.Describe(mRetries, "Fetch retries spent per origin.")
	reg.Describe(mFailures, "Fetches that ended in a typed error, per origin and kind.")
	reg.Describe(mRedirects, "Redirect hops followed per origin.")
	reg.Describe(mFetchMs, "Whole-fetch latency in milliseconds by outcome.")
	reg.Describe(mPhaseMs, "Fetch phase latency in milliseconds (dial, headers, body, exchange).")
	reg.Describe(mPush, "Server pushes by fate: received on the wire, claimed by a fetch, unclaimed at load end.")
	reg.Describe(mPushLeadMs, "How long claimed pushes sat in the push cache before a fetch needed them, in milliseconds.")
	reg.Describe(mBreakTrips, "Circuit-breaker trips per origin.")
	reg.Describe(mBreakOpen, "Whether an origin's circuit breaker is currently open.")
	reg.Describe(mActiveConn, "Live transport connections per origin and protocol.")
	reg.Describe(mLoads, "Page loads started.")
	reg.Describe(mDeadlines, "Page loads cut short by the load deadline.")
}

// clientVecs bounds every client-side per-origin metric family: a
// hostile or merely huge origin set must not grow the exposition without
// limit, so each family folds past-cap origins into the shared
// telemetry.OverflowLabel series. Built lazily once per Client; the zero
// value (nil handles, as when metrics are off) no-ops.
type clientVecs struct {
	reqs      *telemetry.CounterVec
	retries   *telemetry.CounterVec
	fails     *telemetry.CounterVec
	redirects *telemetry.CounterVec
	trips     *telemetry.CounterVec
	breakOpen *telemetry.GaugeVec
	conns     *telemetry.GaugeVec
}

func newClientVecs(reg *telemetry.Registry) clientVecs {
	return clientVecs{
		reqs:      reg.CounterVec(mRequests, "origin", 0),
		retries:   reg.CounterVec(mRetries, "origin", 0),
		fails:     reg.CounterVec(mFailures, "origin", 0),
		redirects: reg.CounterVec(mRedirects, "origin", 0),
		trips:     reg.CounterVec(mBreakTrips, "origin", 0),
		breakOpen: reg.GaugeVec(mBreakOpen, "origin", 0),
		conns:     reg.GaugeVec(mActiveConn, "origin", 0),
	}
}

// beginFetchSpan opens the per-fetch span on the load track, minting the
// fetch's propagated trace context when the client is both tracing and
// propagating. Split out so the zero-overhead contract is benchmarkable:
// with a nil tracer (or propagation off) the disabled work must not
// allocate.
func (c *Client) beginFetchSpan(fl *inflightFetch, key string, prio string) obs.Span {
	if !c.Trace.Enabled() {
		return obs.Span{}
	}
	if c.traceID != 0 {
		tc := obs.TraceContext{Trace: c.traceID, Span: c.fetchSeq.Add(1)}
		fl.flow = tc.String()
		return c.Trace.Begin(obs.TrackLoad, "fetch",
			obs.Arg{Key: "url", Val: key}, obs.Arg{Key: "prio", Val: prio},
			obs.Arg{Key: obs.ArgFlow, Val: fl.flow},
			obs.Arg{Key: obs.ArgTrace, Val: tc.TraceID()})
	}
	return c.Trace.Begin(obs.TrackLoad, "fetch",
		obs.Arg{Key: "url", Val: key}, obs.Arg{Key: "prio", Val: prio})
}

// endFetchSpan closes a fetch span with its outcome.
func (c *Client) endFetchSpan(sp obs.Span, rec *FetchRecord) {
	if !sp.Active() {
		return
	}
	if rec.Failed() {
		sp.End(obs.Arg{Key: "error", Val: string(rec.ErrKind)},
			obs.Arg{Key: "retries", Val: strconv.Itoa(rec.Retries)})
		return
	}
	sp.End(obs.Arg{Key: "status", Val: strconv.Itoa(rec.Status)},
		obs.Arg{Key: "bytes", Val: strconv.Itoa(rec.Bytes)})
}
