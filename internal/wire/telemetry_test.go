package wire

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"vroom/internal/faults"
	"vroom/internal/netem"
	"vroom/internal/obs"
	"vroom/internal/replay"
	"vroom/internal/telemetry"
	"vroom/internal/webpage"
)

// telemetryLoad is chaosLoad with the full observability plane attached:
// one wall-clock tracer and one registry shared by the client, the replay
// server, and the fault shim.
func telemetryLoad(t *testing.T, seed int64) (*Report, *obs.Recording, *telemetry.Registry) {
	t.Helper()
	site := webpage.NewSite("telemwire", webpage.News, 2017)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)
	srv := NewServer(archive, resolver, webpage.PhoneSmall, ServerConfig{SendHints: true, Push: true})

	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}

	plan := faults.New(seed, chaosFaultConfig())
	plan.ExemptURL(root)
	srv.Faults = plan
	shim := netem.NewFaultShim(plan)

	live := &obs.LiveRecording{Start: time.Now()}
	tr := obs.NewWall(live)
	reg := telemetry.NewRegistry()
	srv.Instrument(tr, reg)
	shim.Trace = tr

	link := netem.Listen(netem.LinkConfig{
		Delay:               time.Millisecond,
		DownlinkBytesPerSec: 50e6,
		UplinkBytesPerSec:   50e6,
	})
	go srv.H2().Serve(link)
	defer func() {
		srv.H2().Close()
		link.Close()
	}()

	c := &Client{
		Staged:        true,
		DialTimeout:   2 * time.Second,
		HeaderTimeout: 300 * time.Millisecond,
		StallTimeout:  300 * time.Millisecond,
		LoadDeadline:  chaosDeadline,
		Retry:         RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
		Trace:         tr,
		Metrics:       reg,
	}
	c.Dial = func(origin string) (net.Conn, error) {
		return shim.Dial(origin, link.Dial)
	}

	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatalf("LoadPage must degrade, not fail outright: %v", err)
	}
	// Transport goroutines may still be draining their final events;
	// Snapshot reads race-free, like a metrics scrape.
	return rep, live.Snapshot(), reg
}

// seriesSum sums every sample of one metric family in a Prometheus text
// exposition (counters and gauges; histogram series are skipped by their
// _bucket/_sum/_count suffixes not matching the bare name).
func seriesSum(scrape, name string) (float64, int) {
	var sum float64
	var n int
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // a longer name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	return sum, n
}

// TestWireTelemetryLiveLoad drives a faulted h2 load with the tracer and
// metrics registry attached at every layer and checks both outputs: the
// trace must be valid Perfetto, and the scrape must carry the load's
// retries and pushes with values that match the fetch report.
func TestWireTelemetryLiveLoad(t *testing.T) {
	rep, rec, reg := telemetryLoad(t, 11)

	// Trace side: events were recorded and export as valid Perfetto JSON.
	if rec.Len() == 0 {
		t.Fatal("traced load recorded no events")
	}
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, rec); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := obs.CheckPerfetto(buf.Bytes()); err != nil {
		t.Fatalf("trace is not valid Perfetto: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range rec.Events {
		names[ev.Name] = true
	}
	for _, want := range []string{"load", "fetch", "dial", "conn"} {
		if !names[want] {
			t.Errorf("trace has no %q events", want)
		}
	}

	// Metrics side: the scrape must agree with the report.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	scrape := sb.String()

	if retries, n := seriesSum(scrape, "vroom_wire_retries_total"); n == 0 || int(retries) != rep.Retries {
		t.Errorf("scrape shows %v retries over %d series, report says %d", retries, n, rep.Retries)
	}
	if rep.Retries == 0 {
		t.Error("seed 11 produced no retries; pick a seed that exercises the retry path")
	}
	if pushes, n := seriesSum(scrape, "vroom_wire_push_total"); n == 0 || pushes == 0 {
		t.Errorf("scrape shows no push activity (%v over %d series) on a push-enabled load", pushes, n)
	}
	// Round trips can undercount fetches (push-satisfied and breaker-refused
	// fetches never reach the transport) but must be present per origin.
	if reqs, n := seriesSum(scrape, "vroom_wire_requests_total"); n == 0 || reqs == 0 {
		t.Errorf("scrape shows no round trips (%v over %d series)", reqs, n)
	}
	if srvReqs, _ := seriesSum(scrape, "vroom_server_requests_total"); srvReqs == 0 {
		t.Error("server-side request counter never moved")
	}
	if loads, _ := seriesSum(scrape, "vroom_wire_loads_total"); loads != 1 {
		t.Errorf("loads counter = %v, want 1", loads)
	}
	// The shared phase histogram must have observed dial and header phases.
	for _, phase := range []string{"dial", "headers"} {
		want := `vroom_wire_fetch_phase_ms_count{phase="` + phase + `"}`
		if v, n := seriesSum(scrape, want); n != 1 || v == 0 {
			t.Errorf("phase histogram %s absent or empty (%v over %d series)", want, v, n)
		}
	}
	// The conn gauge settles to zero once the load tears its connections
	// down. (Breaker-open may legitimately finish nonzero: an origin can end
	// the load tripped.)
	if conns, n := seriesSum(scrape, "vroom_wire_active_conns"); n == 0 || conns != 0 {
		t.Errorf("active-conns gauge = %v over %d series after load end, want 0", conns, n)
	}
}

// TestFinalURLRecorded pins the FetchRecord.FinalURL contract: successful
// un-redirected fetches record their own URL, redirected ones record the
// post-redirect URL, and failures leave it empty.
func TestFinalURLRecorded(t *testing.T) {
	redirected := 0
	for _, seed := range []int64{7, 11, 1213} {
		rep, _ := chaosLoad(t, "h2", seed, true)
		for _, f := range rep.Fetches {
			if f.Failed() {
				if f.FinalURL != "" {
					t.Errorf("seed %d: failed fetch of %s records FinalURL %q", seed, f.URL, f.FinalURL)
				}
				continue
			}
			if f.FinalURL == "" {
				t.Errorf("seed %d: successful fetch of %s records no FinalURL", seed, f.URL)
				continue
			}
			if f.Redirects > 0 {
				redirected++
				if f.FinalURL == f.URL {
					t.Errorf("seed %d: %s followed %d redirects but FinalURL equals the request URL",
						seed, f.URL, f.Redirects)
				}
			} else if f.FinalURL != f.URL {
				t.Errorf("seed %d: un-redirected fetch of %s records FinalURL %q", seed, f.URL, f.FinalURL)
			}
		}
	}
	if redirected == 0 {
		t.Error("no seed produced a followed redirect; stale-hint redirects are not reaching FinalURL")
	}
}

// TestNilTracerZeroAlloc enforces the disabled-path contract: with a nil
// tracer and nil registry, the per-fetch instrumentation hooks — trace
// propagation ones included — must not allocate at all.
func TestNilTracerZeroAlloc(t *testing.T) {
	// Propagate without a tracer is the worst disabled case: every
	// propagation guard is reached and must still bail allocation-free.
	c := &Client{Propagate: true}
	lt := newLoadTelemetry(nil)
	frec := FetchRecord{URL: "https://origin.example/x", Status: 200, Bytes: 1024}
	fl := &inflightFetch{}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := c.beginFetchSpan(fl, frec.URL, "high")
		c.endFetchSpan(sp, &frec)
		lt.loads.Inc()
		lt.fetchOkMs.ObserveExemplar(1.5, fl.flow)
		lt.pushReceived.Inc()
		lt.deadlines.Inc()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer fetch instrumentation allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkWireTracerOverhead measures the per-fetch instrumentation cost
// on the disabled (nil tracer, nil registry — propagation flag on and off)
// and enabled paths. The nil paths are the production default and must
// stay at 0 allocs/op.
func BenchmarkWireTracerOverhead(b *testing.B) {
	frec := FetchRecord{URL: "https://origin.example/x", Status: 200, Bytes: 1024}
	disabled := func(c *Client) func(b *testing.B) {
		return func(b *testing.B) {
			lt := newLoadTelemetry(nil)
			fl := &inflightFetch{}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sp := c.beginFetchSpan(fl, frec.URL, "high")
				c.endFetchSpan(sp, &frec)
				lt.loads.Inc()
				lt.fetchOkMs.ObserveExemplar(1.5, fl.flow)
			}
		}
	}
	b.Run("nil", disabled(&Client{}))
	b.Run("nil-propagate", disabled(&Client{Propagate: true}))
	b.Run("enabled", func(b *testing.B) {
		rec := &obs.Recording{}
		c := &Client{Trace: obs.NewWall(rec)}
		lt := newLoadTelemetry(telemetry.NewRegistry())
		fl := &inflightFetch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := c.beginFetchSpan(fl, frec.URL, "high")
			c.endFetchSpan(sp, &frec)
			lt.loads.Inc()
			lt.fetchOkMs.ObserveExemplar(1.5, fl.flow)
			rec.Events = rec.Events[:0]
		}
	})
	b.Run("enabled-propagate", func(b *testing.B) {
		rec := &obs.Recording{}
		c := &Client{Trace: obs.NewWall(rec), Propagate: true, traceID: obs.NewTraceID()}
		lt := newLoadTelemetry(telemetry.NewRegistry())
		fl := &inflightFetch{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := c.beginFetchSpan(fl, frec.URL, "high")
			c.endFetchSpan(sp, &frec)
			lt.loads.Inc()
			lt.fetchOkMs.ObserveExemplar(1.5, fl.flow)
			rec.Events = rec.Events[:0]
		}
	})
}
