package wire

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"vroom/internal/netem"
	"vroom/internal/obs"
	"vroom/internal/overload"
	"vroom/internal/replay"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

// traceWorld is the cross-process tracing fixture: an instrumented replay
// server (own tracer, own recording) behind a netem link, and a propagating
// client with its own tracer — two processes in miniature, joined only by
// the vroom-trace header on the wire.
type traceWorld struct {
	srv    *Server
	srvRec *obs.LiveRecording
	cliRec *obs.LiveRecording
	client *Client
	root   urlutil.URL
}

func newTraceWorld(t *testing.T, gate *overload.Gate, cfg ServerConfig, retry RetryPolicy) *traceWorld {
	t.Helper()
	site := webpage.NewSite("tracewire", webpage.News, 2017)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)
	srv := NewServer(archive, resolver, webpage.PhoneSmall, cfg)
	srv.Gate = gate

	srvRec := &obs.LiveRecording{Start: time.Now()}
	srv.Instrument(obs.NewWall(srvRec), nil)

	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}

	link := netem.Listen(netem.LinkConfig{
		Delay:               time.Millisecond,
		DownlinkBytesPerSec: 50e6,
		UplinkBytesPerSec:   50e6,
	})
	go srv.H2().Serve(link)
	t.Cleanup(func() {
		srv.H2().Close()
		link.Close()
	})

	cliRec := &obs.LiveRecording{Start: time.Now()}
	c := &Client{
		Staged:        true,
		DialTimeout:   2 * time.Second,
		HeaderTimeout: 2 * time.Second,
		StallTimeout:  2 * time.Second,
		LoadDeadline:  chaosDeadline,
		Retry:         retry,
		Trace:         obs.NewWall(cliRec),
		Propagate:     true,
		Dial:          func(string) (net.Conn, error) { return link.Dial() },
	}
	return &traceWorld{srv: srv, srvRec: srvRec, cliRec: cliRec, client: c, root: root}
}

// merged returns the two processes' recordings merged into one timeline,
// server tracks prefixed "srv:" exactly the way vroom-load exports them.
func (w *traceWorld) merged() *obs.Recording {
	return obs.Merge(w.cliRec.Snapshot(), obs.PrefixTracks(w.srvRec.Snapshot(), "srv:"))
}

// beginFlows indexes a merged recording's Begin events by propagated flow
// value: flow -> the tracks that opened a span carrying it.
func beginFlows(rec *obs.Recording) map[string][]string {
	flows := make(map[string][]string)
	for _, ev := range rec.Events {
		if ev.Kind != obs.KindBegin {
			continue
		}
		for _, a := range ev.Args {
			if a.Key == obs.ArgFlow && a.Val != "" {
				flows[a.Val] = append(flows[a.Val], ev.Track)
			}
		}
	}
	return flows
}

// crossProcessJoins counts flows whose spans appear on both a client track
// and a "srv:"-prefixed server track — the stricter form of
// obs.FlowJoinCount that ignores client-internal track crossings.
func crossProcessJoins(rec *obs.Recording) int {
	joins := 0
	for _, tracks := range beginFlows(rec) {
		cli, srv := false, false
		for _, tr := range tracks {
			if strings.HasPrefix(tr, "srv:") {
				srv = true
			} else {
				cli = true
			}
		}
		if cli && srv {
			joins++
		}
	}
	return joins
}

// checkMergedPerfetto renders the merged recording and validates it.
func checkMergedPerfetto(t *testing.T, rec *obs.Recording) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := obs.WritePerfetto(&buf, rec); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if err := obs.CheckPerfetto(buf.Bytes()); err != nil {
		t.Fatalf("merged trace is not Perfetto-valid: %v", err)
	}
	return buf.Bytes()
}

// TestTracePropagationEndToEnd drives a clean propagated load through the
// full stack and asserts the acceptance criterion: at least one fetch's
// client span and its server-side admission/hint/push spans share a trace
// ID, joined by flow events in a Perfetto-valid merged file.
func TestTracePropagationEndToEnd(t *testing.T) {
	gate := overload.NewGate(overload.Config{MaxConcurrent: 64, MaxQueue: 64, MaxWait: time.Second})
	w := newTraceWorld(t, gate, ServerConfig{SendHints: true, Push: true}, RetryPolicy{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond})

	rep, err := w.client.LoadPage(w.root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed > 0 {
		t.Fatalf("clean load failed %d fetches", rep.Failed)
	}

	merged := w.merged()
	if joins := crossProcessJoins(merged); joins < 1 {
		t.Fatalf("no fetch flow joined client and server spans (got %d joins over %d events)", joins, len(merged.Events))
	}

	// Every propagated flow that reached the server carries one trace ID:
	// the client's per-load ID, stamped on both sides as ArgTrace.
	traceIDs := make(map[string]bool)
	srvSpans := make(map[string]bool)
	for _, ev := range merged.Events {
		if ev.Kind != obs.KindBegin {
			continue
		}
		onSrv := strings.HasPrefix(ev.Track, "srv:")
		if onSrv {
			srvSpans[ev.Name] = true
		}
		for _, a := range ev.Args {
			if a.Key == obs.ArgTrace && a.Val != "" {
				traceIDs[a.Val] = true
			}
		}
	}
	if len(traceIDs) != 1 {
		t.Errorf("expected exactly one per-load trace ID across both processes, got %d (%v)", len(traceIDs), traceIDs)
	}
	for _, name := range []string{"serve", "admission", "hint-lookup", "push-write"} {
		if !srvSpans[name] {
			t.Errorf("server recording lacks a %q span (server spans: %v)", name, srvSpans)
		}
	}

	// Flow join is visible in the rendered artifact too: a flow start ("s")
	// bound to a finish ("f").
	data := checkMergedPerfetto(t, merged)
	if !bytes.Contains(data, []byte(`"ph":"s"`)) || !bytes.Contains(data, []byte(`"ph":"f"`)) {
		t.Error("rendered trace carries no flow start/finish events")
	}
}

// TestDrainMidLoadTraceComplete drains the server while a propagated load
// is in flight. The load must still return, every server-side span must
// close (beginServe's deferred End), and the merged recording must render
// to a valid Perfetto file with the root fetch's cross-process join intact.
func TestDrainMidLoadTraceComplete(t *testing.T) {
	gate := overload.NewGate(overload.Config{MaxConcurrent: 64, MaxQueue: 64, MaxWait: time.Second})
	w := newTraceWorld(t, gate, ServerConfig{SendHints: true, Push: true, ThinkTime: 100 * time.Millisecond},
		RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	w.client.LoadDeadline = 10 * time.Second

	done := make(chan *Report, 1)
	go func() {
		rep, err := w.client.LoadPage(w.root)
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()

	// The root request is in the server's 100ms think by now; drain around it.
	time.Sleep(50 * time.Millisecond)
	w.srv.Drain(3 * time.Second)

	select {
	case rep := <-done:
		if rep == nil {
			return // LoadPage error already reported
		}
	case <-time.After(20 * time.Second):
		t.Fatal("load did not return after mid-load drain")
	}

	// Graceful drain may degrade the load but never truncates the server's
	// serving-path recording: every span the handler opened was closed on
	// the way out. Transport "conn" spans are excluded — they close with
	// the TCP connection, whose lifetime the client controls.
	srvSnap := w.srvRec.Snapshot()
	open := make(map[uint64]string)
	for _, ev := range srvSnap.Events {
		switch ev.Kind {
		case obs.KindBegin:
			if ev.Track == obs.TrackServer && ev.Name != "conn" {
				open[ev.ID] = ev.Name
			}
		case obs.KindEnd:
			delete(open, ev.ID)
		}
	}
	if len(open) > 0 {
		t.Errorf("server recording left %d spans open after drain: %v", len(open), open)
	}

	merged := obs.Merge(w.cliRec.Snapshot(), obs.PrefixTracks(srvSnap, "srv:"))
	if joins := crossProcessJoins(merged); joins < 1 {
		t.Errorf("mid-drain trace lost the root fetch's cross-process join")
	}
	checkMergedPerfetto(t, merged)
}

// TestShedCrossCheck squeezes a staged load through a one-slot admission
// gate and cross-checks the degradation accounting end to end: every 503
// the gate refused must surface on the client as a failed fetch tagged
// shed-request (the header survives the failure path), and the client's
// count must equal the server's shed counter exactly.
func TestShedCrossCheck(t *testing.T) {
	gate := overload.NewGate(overload.Config{MaxConcurrent: 1, MaxQueue: 1, MaxWait: time.Millisecond})
	w := newTraceWorld(t, gate, ServerConfig{SendHints: true}, RetryPolicy{MaxAttempts: 1})

	rep, err := w.client.LoadPage(w.root)
	if err != nil {
		t.Fatal(err)
	}

	tagged := 0
	for _, f := range rep.Fetches {
		if f.Status == 503 {
			if !f.Failed() {
				t.Errorf("503 fetch of %s not marked failed", f.URL)
			}
			if !hasToken(f.Degraded, DegradedShedRequest) {
				t.Errorf("shed 503 of %s lost its degradation tag (got %q)", f.URL, f.Degraded)
			}
			tagged++
		} else if hasToken(f.Degraded, DegradedShedRequest) {
			t.Errorf("non-503 fetch of %s tagged shed-request (status %d)", f.URL, f.Status)
		}
	}
	if tagged == 0 {
		t.Fatal("one-slot gate shed nothing; the cross-check exercised no path")
	}
	if shed := w.srv.Stats().Shed; tagged != shed {
		t.Errorf("client saw %d shed-request 503s, server counted %d sheds", tagged, shed)
	}
	if gs := gate.Stats().Shed; gs == 0 {
		t.Error("gate snapshot counted no sheds")
	}
}
