package wire

import (
	"net"
	"testing"
	"time"

	"vroom/internal/h1"
	"vroom/internal/netem"
	"vroom/internal/replay"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
)

var recordTime = time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)

// startReplay serves a generated site over an emulated link and returns a
// dialer plus the archive.
func startReplay(t *testing.T, cfg ServerConfig) (*replay.Archive, *Server, func(string) (net.Conn, error), func()) {
	t.Helper()
	site := webpage.NewSite("wiretest", webpage.Top100, 4242)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)
	srv := NewServer(archive, resolver, webpage.PhoneSmall, cfg)

	link := netem.Listen(netem.LinkConfig{
		Delay:               2 * time.Millisecond,
		DownlinkBytesPerSec: 20e6,
		UplinkBytesPerSec:   20e6,
	})
	go srv.H2().Serve(link)
	dial := func(string) (net.Conn, error) { return link.Dial() }
	stop := func() { srv.H2().Close(); link.Close() }
	return archive, srv, dial, stop
}

func TestBaselineLoadFetchesWholePage(t *testing.T) {
	archive, _, dial, stop := startReplay(t, ServerConfig{})
	defer stop()
	c := &Client{Dial: dial}
	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fetches) < archive.Len()*8/10 {
		t.Fatalf("fetched %d of %d archive resources", len(rep.Fetches), archive.Len())
	}
	for _, f := range rep.Fetches {
		if f.Status != 200 {
			t.Errorf("%s -> status %d", f.URL, f.Status)
		}
	}
	if rep.Total() <= 0 {
		t.Fatal("zero load time")
	}
}

func TestVroomLoadPushesAndHints(t *testing.T) {
	archive, srv, dial, stop := startReplay(t, ServerConfig{SendHints: true, Push: true})
	defer stop()
	c := &Client{Dial: dial, Staged: true}
	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pushed == 0 {
		t.Error("no resources were pushed")
	}
	if srv.Stats().Pushes == 0 {
		t.Error("server reports zero pushes")
	}
	if len(rep.Fetches) < archive.Len()*8/10 {
		t.Fatalf("fetched %d of %d archive resources", len(rep.Fetches), archive.Len())
	}
	// No double fetch: each URL exactly once.
	seen := map[string]int{}
	for _, f := range rep.Fetches {
		seen[f.URL]++
	}
	for u, n := range seen {
		if n > 1 {
			t.Errorf("%s fetched %d times", u, n)
		}
	}
}

func TestVroomWireFasterUnderLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("latency-sensitive timing test")
	}
	site := webpage.NewSite("wireperf", webpage.Top100, 777)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	resolver := TrainResolver(site, recordTime, webpage.PhoneSmall)

	// lastHighIssued is when the client sent its final high-priority
	// request: the discovery latency hints eliminate. (Completion times
	// on this harness are bandwidth-bound — there is no CPU model to
	// overlap with — so issuance is the right wire-level metric.)
	lastHighIssued := func(rep *Report) time.Duration {
		var last time.Time
		for _, f := range rep.Fetches {
			if f.Priority == 0 && !f.Pushed && f.Start.After(last) { // hints.High
				last = f.Start
			}
		}
		return last.Sub(rep.Started)
	}
	run := func(cfg ServerConfig, staged bool) (time.Duration, time.Duration) {
		srv := NewServer(archive, resolver, webpage.PhoneSmall, cfg)
		link := netem.Listen(netem.LinkConfig{
			Delay:               20 * time.Millisecond,
			DownlinkBytesPerSec: 4e6,
			UplinkBytesPerSec:   2e6,
		})
		go srv.H2().Serve(link)
		defer func() { srv.H2().Close(); link.Close() }()
		c := &Client{Dial: func(string) (net.Conn, error) { return link.Dial() }, Staged: staged}
		root, err := archive.Records[0].ParsedURL()
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.LoadPage(root)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Total(), lastHighIssued(rep)
	}

	baseTotal, baseIssue := run(ServerConfig{}, false)
	vroomTotal, vroomIssue := run(ServerConfig{SendHints: true, Push: true}, true)
	t.Logf("total: baseline=%v vroom=%v; last high-priority request issued: baseline=%v vroom=%v",
		baseTotal, vroomTotal, baseIssue, vroomIssue)
	// Hints collapse the fetch-evaluate-fetch discovery round trips on
	// script chains: every high-priority request must go out much
	// earlier than under baseline discovery.
	if vroomIssue >= baseIssue {
		t.Errorf("vroom issued its last high-priority request at %v, baseline at %v", vroomIssue, baseIssue)
	}
	if vroomTotal > baseTotal*2 {
		t.Errorf("vroom total (%v) pathologically slower than baseline (%v)", vroomTotal, baseTotal)
	}
}

func TestHTTP1WireLoad(t *testing.T) {
	site := webpage.NewSite("h1wire", webpage.Top100, 888)
	sn := site.Snapshot(recordTime, webpage.Profile{Device: webpage.PhoneSmall, UserID: 5}, 1)
	archive := replay.FromSnapshot(sn)
	srv := NewServer(archive, nil, webpage.PhoneSmall, ServerConfig{})

	link := netem.Listen(netem.LinkConfig{Delay: time.Millisecond, DownlinkBytesPerSec: 50e6, UplinkBytesPerSec: 50e6})
	h1srv := &h1.Server{Handler: srv}
	go h1srv.Serve(link)
	defer func() { h1srv.Close(); link.Close() }()

	c := &Client{DialOrigin: func(origin string) (OriginConn, error) {
		u, err := urlutil.Parse(origin + "/")
		if err != nil {
			return nil, err
		}
		return &h1.Pool{Authority: u.Host, Dial: func() (net.Conn, error) { return link.Dial() }}, nil
	}}
	root, err := archive.Records[0].ParsedURL()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.LoadPage(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Fetches) != archive.Len() {
		t.Fatalf("fetched %d of %d over HTTP/1.1", len(rep.Fetches), archive.Len())
	}
	for _, f := range rep.Fetches {
		if f.Status != 200 {
			t.Errorf("%s -> %d", f.URL, f.Status)
		}
		if f.Pushed {
			t.Errorf("HTTP/1.1 load reported a push: %s", f.URL)
		}
	}
}
