// Package vroom is a faithful reproduction of "VROOM: Accelerating the
// Mobile Web with Server-Aided Dependency Resolution" (SIGCOMM 2017). It
// provides:
//
//   - a generative web-page corpus with real HTML/CSS/JS bodies, content
//     churn, ads, device variants, and cookie personalization;
//   - a deterministic mobile-browser and cellular-network simulation able
//     to load those pages under HTTP/1.1, HTTP/2, Vroom, and every ablation
//     the paper evaluates;
//   - Vroom itself: server-side offline+online dependency resolution,
//     dependency-hint headers (Table 1), push-set selection, and the staged
//     client scheduler;
//   - a wire-level stack (HTTP/2 with PUSH_PROMISE, HPACK, flow control,
//     over emulated links) that runs the same protocol for real;
//   - experiment drivers that regenerate every figure in the paper.
//
// This package is the public facade; the implementation lives in
// internal/... packages. Quick start:
//
//	site := vroom.NewSite("mynews", vroom.CategoryNews, 42)
//	res, err := vroom.LoadPage(site, vroom.PolicyVroom, vroom.LoadOptions{})
//	fmt.Println(res.PLT)
package vroom

import (
	"time"

	"vroom/internal/browser"
	"vroom/internal/core"
	"vroom/internal/experiments"
	"vroom/internal/hints"
	"vroom/internal/metrics"
	"vroom/internal/replay"
	"vroom/internal/runner"
	"vroom/internal/urlutil"
	"vroom/internal/webpage"
	"vroom/internal/wire"
)

// Core page-model types.
type (
	// Site is a generative model of one website.
	Site = webpage.Site
	// Snapshot is one consistent materialization of a site.
	Snapshot = webpage.Snapshot
	// Resource is one fetchable object.
	Resource = webpage.Resource
	// Profile identifies a client device and user.
	Profile = webpage.Profile
	// Category is a site category.
	Category = webpage.Category
	// DeviceClass groups devices into Vroom's equivalence classes.
	DeviceClass = webpage.DeviceClass
	// URL is a normalized absolute URL.
	URL = urlutil.URL
)

// Site categories.
const (
	CategoryTop100 = webpage.Top100
	CategoryNews   = webpage.News
	CategorySports = webpage.Sports
)

// Device classes.
const (
	DevicePhoneSmall = webpage.PhoneSmall
	DevicePhoneLarge = webpage.PhoneLarge
	DeviceTablet     = webpage.Tablet
)

// NewSite builds a deterministic site model.
func NewSite(name string, cat Category, seed int64) *Site {
	return webpage.NewSite(name, cat, seed)
}

// GenerateCorpus builds a site corpus; see CorpusConfig.
func GenerateCorpus(cfg CorpusConfig) *Corpus { return webpage.Generate(cfg) }

// Corpus and its configuration.
type (
	// Corpus is a set of generated sites.
	Corpus = webpage.Corpus
	// CorpusConfig selects corpus composition.
	CorpusConfig = webpage.CorpusConfig
)

// Policy names a complete client+server configuration to load pages under.
type Policy = runner.Policy

// Policies (see DESIGN.md §4 for the figure each appears in).
const (
	PolicyHTTP1            = runner.HTTP1
	PolicyH2               = runner.H2
	PolicyH2PushAllStatic  = runner.H2PushAllStatic
	PolicyVroom            = runner.Vroom
	PolicyVroomFirstParty  = runner.VroomFirstParty
	PolicyPushAllFetchASAP = runner.PushAllFetchASAP
	PolicyPushHighNoHints  = runner.PushHighNoHints
	PolicyPushAllNoHints   = runner.PushAllNoHints
	PolicyDepsFromPrevLoad = runner.DepsFromPrevLoad
	PolicyOfflineOnly      = runner.OfflineOnly
	PolicyOnlineOnly       = runner.OnlineOnly
	PolicyPolaris          = runner.Polaris
	PolicyCPUOnly          = runner.CPUOnly
	PolicyNetworkOnly      = runner.NetworkOnly
)

// AllPolicies lists every runnable policy.
func AllPolicies() []Policy { return runner.AllPolicies() }

// LoadOptions configure one simulated page load.
type LoadOptions = runner.Options

// LoadResult summarizes a finished load.
type LoadResult = browser.Result

// Cache is a browser HTTP cache reusable across loads.
type Cache = browser.Cache

// NewCache returns an empty browser cache.
func NewCache() *Cache { return browser.NewCache() }

// LoadPage executes one simulated page load of site under a policy.
func LoadPage(site *Site, pol Policy, opts LoadOptions) (LoadResult, error) {
	return runner.Run(site, pol, opts)
}

// Resolver is Vroom's server-side dependency resolver.
type Resolver = core.Resolver

// ResolverConfig selects the resolution strategy.
type ResolverConfig = core.ResolverConfig

// NewResolver builds a resolver; see DefaultResolverConfig.
func NewResolver(cfg ResolverConfig) *Resolver { return core.NewResolver(cfg) }

// DefaultResolverConfig is the full Vroom strategy (3 hourly offline loads
// plus online HTML analysis).
func DefaultResolverConfig() ResolverConfig { return core.DefaultResolverConfig() }

// Hint types (Table 1).
type (
	// Hint is one dependency hint.
	Hint = hints.Hint
	// HintPriority is a hint's priority class.
	HintPriority = hints.Priority
)

// Hint priorities.
const (
	HintHigh = hints.High
	HintSemi = hints.Semi
	HintLow  = hints.Low
)

// FormatHints renders hints as HTTP headers; ParseHints inverts it.
func FormatHints(hs []Hint) map[string][]string { return hints.Format(hs) }

// ParseHints extracts hints from HTTP headers.
func ParseHints(h map[string][]string) []Hint { return hints.Parse(h) }

// Experiment access: every figure in the paper.
type (
	// ExperimentOptions scale an experiment run.
	ExperimentOptions = experiments.Options
	// ExperimentResult is one reproduced figure.
	ExperimentResult = experiments.Result
	// Dist is a sample distribution with percentile accessors.
	Dist = metrics.Dist
)

// DefaultExperimentOptions reproduces the paper's scale; quick options for
// smoke runs.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions is a scaled-down configuration.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// ExperimentIDs lists the reproducible figures.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one figure by ID ("fig01".."fig21").
func RunExperiment(id string, o ExperimentOptions) (*ExperimentResult, error) {
	run, ok := experiments.Registry[id]
	if !ok {
		return nil, errUnknownExperiment(id)
	}
	return run(o)
}

type errUnknownExperiment string

func (e errUnknownExperiment) Error() string {
	return "vroom: unknown experiment " + string(e) + " (see ExperimentIDs)"
}

// Wire-level (real HTTP/2) components.
type (
	// Archive is a recorded page for replay.
	Archive = replay.Archive
	// WireServer replays an archive over HTTP/2 with hints and push.
	WireServer = wire.Server
	// WireServerConfig controls the wire server.
	WireServerConfig = wire.ServerConfig
	// WireClient loads pages over real HTTP/2 connections.
	WireClient = wire.Client
	// WireReport summarizes a wire page load.
	WireReport = wire.Report
)

// RecordSnapshot archives a materialized page for wire replay.
func RecordSnapshot(sn *Snapshot) *Archive { return replay.FromSnapshot(sn) }

// NewWireServer builds a replay server; resolver may be nil when hints are
// disabled.
func NewWireServer(a *Archive, r *Resolver, d DeviceClass, cfg WireServerConfig) *WireServer {
	return wire.NewServer(a, r, d, cfg)
}

// TrainResolver trains a resolver the way a deployment's periodic offline
// loads would.
func TrainResolver(site *Site, at time.Time, device DeviceClass) *Resolver {
	return wire.TrainResolver(site, at, device)
}
