package vroom_test

import (
	"strings"
	"testing"
	"time"

	"vroom"
)

func TestFacadeLoadPage(t *testing.T) {
	site := vroom.NewSite("facade", vroom.CategoryNews, 1)
	res, err := vroom.LoadPage(site, vroom.PolicyVroom, vroom.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PLT <= 0 || res.NumRequired == 0 {
		t.Fatalf("bad result: %+v", res)
	}
}

func TestFacadePolicies(t *testing.T) {
	if len(vroom.AllPolicies()) < 14 {
		t.Fatalf("policies: %v", vroom.AllPolicies())
	}
}

func TestFacadeHints(t *testing.T) {
	site := vroom.NewSite("facade", vroom.CategoryNews, 2)
	r := vroom.NewResolver(vroom.DefaultResolverConfig())
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	r.Train(site, at, vroom.DevicePhoneSmall)
	sn := site.Snapshot(at, vroom.Profile{Device: vroom.DevicePhoneSmall, UserID: 1}, 1)
	hs := r.HintsFor(sn.Root, sn.RootResource().Body, vroom.DevicePhoneSmall)
	if len(hs) == 0 {
		t.Fatal("no hints")
	}
	headers := vroom.FormatHints(hs)
	back := vroom.ParseHints(headers)
	if len(back) != len(hs) {
		t.Fatalf("hint round trip lost entries: %d vs %d", len(back), len(hs))
	}
}

func TestFacadeExperiments(t *testing.T) {
	ids := vroom.ExperimentIDs()
	if len(ids) < 15 {
		t.Fatalf("experiments: %v", ids)
	}
	o := vroom.QuickExperimentOptions()
	o.NewsSites, o.SportsSites = 2, 2
	res, err := vroom.RunExperiment("fig04", o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "fig04") {
		t.Fatalf("text: %q", res.Text)
	}
	if _, err := vroom.RunExperiment("nope", o); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeArchive(t *testing.T) {
	site := vroom.NewSite("facade", vroom.CategoryNews, 3)
	at := time.Date(2017, 8, 21, 12, 0, 0, 0, time.UTC)
	sn := site.Snapshot(at, vroom.Profile{Device: vroom.DevicePhoneSmall, UserID: 1}, 1)
	a := vroom.RecordSnapshot(sn)
	if a.Len() != sn.Len() {
		t.Fatalf("archive %d vs snapshot %d", a.Len(), sn.Len())
	}
	r := vroom.TrainResolver(site, at, vroom.DevicePhoneSmall)
	srv := vroom.NewWireServer(a, r, vroom.DevicePhoneSmall, vroom.WireServerConfig{SendHints: true, Push: true})
	if srv.H2() == nil {
		t.Fatal("no h2 server")
	}
}
